"""The metrics registry: one namespace over every counter in the stack.

The paper's evaluation is a telemetry exercise — Figures 6–7 count DRAM
accesses by category, §5.1.1 counts merge-resolved CAS races — and the
repo grew three disconnected silos for exactly those numbers
(:class:`~repro.net.metrics.ServerMetrics`,
:class:`~repro.replication.metrics.ReplicationMetrics`,
:class:`~repro.memory.stats.DramStats`). This module is the single pane
of glass over all of them: instruments are *registered once* and *read
at collection time* through callbacks, so the silos keep their hot-path
layout (plain dataclass fields) and their legacy ``stats`` /
``stats json`` output stays byte-identical while the registry gains a
Prometheus text exposition and a JSON snapshot of the same values.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (ops, bytes,
  merge commits, DRAM accesses);
* :class:`Gauge` — point-in-time values (queue high-watermarks,
  replication lag, latency quantiles from the reservoir);
* :class:`Histogram` — fixed-bucket distributions with cumulative
  ``le`` bucket semantics (a sample equal to a bound lands *in* that
  bound's bucket).

Everything is single-threaded-asyncio friendly: no locks, collection is
a pure read.
"""

from __future__ import annotations

import json
import math
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError("bad metric name %r" % name)
    return name


def _format_value(value) -> str:
    """Prometheus sample formatting: ints stay ints, floats round-trip."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class _Metric:
    """Shared plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 fn: Optional[Callable] = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(labels)
        for label in self.label_names:
            if not _LABEL_RE.match(label):
                raise ValueError("bad label name %r" % label)
        #: read-at-collect callback; returns a number (unlabeled) or a
        #: ``{label value(s): number}`` mapping (labeled)
        self.fn = fn
        self._values: Dict[Tuple[str, ...], float] = {}

    # -- write side (no-op when a callback owns the value) -------------

    def _key(self, label_values: Tuple[str, ...]) -> Tuple[str, ...]:
        if len(label_values) != len(self.label_names):
            raise ValueError(
                "%s expects %d label value(s), got %d"
                % (self.name, len(self.label_names), len(label_values)))
        return tuple(str(v) for v in label_values)

    # -- read side -----------------------------------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        """``(label values, value)`` pairs, deterministically ordered."""
        if self.fn is not None:
            raw = self.fn()
            if self.label_names:
                return [((str(k),) if not isinstance(k, tuple)
                         else tuple(str(p) for p in k), v)
                        for k, v in sorted(
                            raw.items(), key=lambda kv: str(kv[0]))]
            return [((), raw)]
        return sorted(self._values.items())

    def snapshot_value(self):
        """JSON-safe value for :meth:`MetricsRegistry.snapshot`."""
        samples = self.samples()
        if not self.label_names:
            return samples[0][1] if samples else 0
        return {",".join(labels): value for labels, value in samples}


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1, *label_values) -> None:
        key = self._key(tuple(label_values))
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, *label_values) -> float:
        return self._values.get(self._key(tuple(label_values)), 0)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, *label_values) -> None:
        self._values[self._key(tuple(label_values))] = value

    def value(self, *label_values) -> float:
        return self._values.get(self._key(tuple(label_values)), 0)


class Histogram(_Metric):
    """A fixed-bucket distribution with cumulative ``le`` buckets.

    ``buckets`` are the finite upper bounds, strictly increasing; a
    ``+Inf`` bucket is implicit. A sample exactly equal to a bound is
    counted in that bound's bucket (``value <= le``).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = (), labels: Sequence[str] = ()
                 ) -> None:
        if not buckets:
            raise ValueError("histogram %s needs explicit buckets" % name)
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must strictly increase")
        super().__init__(name, help, labels)
        self.bounds = bounds
        #: label values -> (per-bucket counts incl. +Inf, sum, count)
        self._series: Dict[Tuple[str, ...], List] = {}

    def observe(self, value: float, *label_values) -> None:
        key = self._key(tuple(label_values))
        series = self._series.get(key)
        if series is None:
            series = [[0] * (len(self.bounds) + 1), 0.0, 0]
            self._series[key] = series
        counts, _, _ = series
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        series[1] += value
        series[2] += 1

    def series(self) -> List[Tuple[Tuple[str, ...], List[int], float, int]]:
        """``(labels, cumulative bucket counts, sum, count)`` rows."""
        rows = []
        for key in sorted(self._series):
            counts, total, count = self._series[key]
            cumulative, running = [], 0
            for c in counts:
                running += c
                cumulative.append(running)
            rows.append((key, cumulative, total, count))
        return rows

    def snapshot_value(self):
        out = {}
        for labels, cumulative, total, count in self.series():
            bucket_map = {
                _format_value(b): c
                for b, c in zip(self.bounds, cumulative)}
            bucket_map["+Inf"] = cumulative[-1]
            out[",".join(labels)] = {
                "count": count,
                "sum": total,
                "buckets": bucket_map,
            }
        if not self.label_names:
            return out.get("", {"count": 0, "sum": 0.0, "buckets": {}})
        return out


class MetricsRegistry:
    """A named collection of instruments with two exposition formats."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- registration --------------------------------------------------

    def _add(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError("metric %r already registered" % metric.name)
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                fn: Optional[Callable] = None) -> Counter:
        return self._add(Counter(name, help, labels, fn))

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              fn: Optional[Callable] = None) -> Gauge:
        return self._add(Gauge(name, help, labels, fn))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = (),
                  labels: Sequence[str] = ()) -> Histogram:
        return self._add(Histogram(name, help, buckets, labels))

    # -- read side -----------------------------------------------------

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict:
        """JSON-safe ``{metric name: value(s)}`` document."""
        return {name: self._metrics[name].snapshot_value()
                for name in self.names()}

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    def exposition(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            if isinstance(metric, Histogram):
                self._expose_histogram(lines, metric)
                continue
            for label_values, value in metric.samples():
                lines.append("%s%s %s" % (
                    name,
                    self._label_block(metric.label_names, label_values),
                    _format_value(value)))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_block(names: Sequence[str],
                     values: Sequence[str],
                     extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [(n, str(v)) for n, v in zip(names, values)]
        pairs.extend(extra)
        if not pairs:
            return ""
        return "{%s}" % ",".join(
            '%s="%s"' % (n, _escape_label(v)) for n, v in pairs)

    def _expose_histogram(self, lines: List[str],
                          metric: Histogram) -> None:
        for labels, cumulative, total, count in metric.series():
            bounds = [_format_value(b) for b in metric.bounds] + ["+Inf"]
            for bound, c in zip(bounds, cumulative):
                lines.append("%s_bucket%s %d" % (
                    metric.name,
                    self._label_block(metric.label_names, labels,
                                      extra=[("le", bound)]),
                    c))
            block = self._label_block(metric.label_names, labels)
            lines.append("%s_sum%s %s"
                         % (metric.name, block, _format_value(total)))
            lines.append("%s_count%s %d" % (metric.name, block, count))


def parse_exposition(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str],
                                                         ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs. Used by the
    ``repro metrics`` CLI and the smoke test that cross-checks the
    exposition against ``stats json``.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError("unparseable sample line %r" % line)
        labels: List[Tuple[str, str]] = []
        name = name_part
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            body = rest.rsplit("}", 1)[0]
            for item in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', body):
                label, raw = item
                value = raw.replace('\\"', '"').replace("\\n", "\n") \
                    .replace("\\\\", "\\")
                labels.append((label, value))
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        out[(name, tuple(sorted(labels)))] = value
    return out


def sample(parsed: Dict, name: str, **labels) -> float:
    """Convenience lookup into :func:`parse_exposition` output."""
    return parsed[(name, tuple(sorted(
        (k, str(v)) for k, v in labels.items())))]
