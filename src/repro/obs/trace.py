"""Trace spans with DRAM-traffic attribution.

A *span* is one timed operation — a request, a commit-queue batch, a
merge-update, a replication root advance — with a name, a parent link,
and free-form attributes. The recorder follows the same discipline as
:class:`~repro.net.metrics.ServerMetrics`: the clock is injectable, so
under a deterministic testing clock a recorded trace is a pure function
of the workload and two runs of the same fuzz seed produce byte-identical
JSONL.

Tracing is **zero-cost when disabled**: the default recorder everywhere
is the module-level :data:`NULL_RECORDER`, whose ``enabled`` flag lets
hot paths skip even building attribute dicts::

    rec = router.recorder
    span = rec.begin("commit_batch", shard=shard) if rec.enabled else None
    ...
    if span is not None:
        rec.end(span, writes=writes)

**DRAM attribution** rides on spans: pass a
:class:`~repro.memory.stats.DramStats` block to :meth:`TraceRecorder.span`
(or use :class:`DramProbe` directly) and the per-category access deltas
accumulated inside the span are attached as ``dram_reads``,
``dram_lookups``, … attributes — one trace then answers *which memcached
command caused these lookup/refcount accesses* (the Figure 6 categories,
attributed per operation).

Export formats: JSONL (one span per line, stable field order) and the
Chrome ``trace_event`` format (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "DramProbe",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "StepClock",
    "TraceRecorder",
    "load_jsonl",
    "render_spans",
    "to_chrome_trace",
]


class StepClock:
    """A monotonic clock advancing a fixed step per reading.

    Deterministic traces in tests: timestamps become call counts, so a
    trace's bytes depend only on the sequence of recorded events.
    """

    def __init__(self, step: float = 0.001, start: float = 0.0) -> None:
        self.step = step
        self.t = start

    def __call__(self) -> float:
        self.t += self.step
        return self.t


@dataclass
class Span:
    """One recorded operation; ``end`` is None while still open."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class DramProbe:
    """Context manager capturing a DRAM-access delta around a block.

    ``probe.delta`` (a :class:`~repro.memory.stats.DramStats`) is valid
    after exit; :meth:`attrs` renders it as span attributes.
    """

    def __init__(self, dram) -> None:
        self.dram = dram
        self.delta = None
        self._before = None

    def __enter__(self) -> "DramProbe":
        self._before = self.dram.snapshot()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.delta = self.dram.delta(self._before)
        return False

    def attrs(self) -> Dict[str, int]:
        """``dram_<category>`` attributes for the captured delta."""
        if self.delta is None:
            return {}
        return {"dram_" + name: count
                for name, count in self.delta.as_dict().items()}


class _NullSpanContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CTX = _NullSpanContext()


class NullRecorder:
    """The no-op recorder: every operation returns immediately.

    ``enabled`` is False so instrumented code can skip building
    attributes entirely; when a call does land here anyway it does no
    work and allocates nothing.
    """

    enabled = False

    def begin(self, name: str, parent: Optional[int] = None,
              **attrs) -> None:
        return None

    def end(self, span_id, **attrs) -> None:
        pass

    def attach(self, span_id, **attrs) -> None:
        pass

    def span(self, name: str, parent: Optional[int] = None,
             dram=None, **attrs) -> _NullSpanContext:
        return _NULL_CTX


#: The process-wide default recorder — tracing off, zero overhead.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Records spans with an injectable monotonic clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1

    # -- recording -----------------------------------------------------

    def begin(self, name: str, parent: Optional[int] = None,
              **attrs) -> int:
        """Open a span; returns its id (parent links are explicit —
        async interleaving makes an implicit stack wrong)."""
        span = Span(self._next_id, parent, name, self.clock(),
                    attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end(self, span_id: Optional[int], **attrs) -> None:
        if span_id is None:
            return
        span = self._by_id.get(span_id)
        if span is None or span.end is not None:
            return
        if attrs:
            span.attrs.update(attrs)
        span.end = self.clock()

    def attach(self, span_id: Optional[int], **attrs) -> None:
        """Add attributes to an open or closed span."""
        if span_id is None:
            return
        span = self._by_id.get(span_id)
        if span is not None:
            span.attrs.update(attrs)

    @contextmanager
    def span(self, name: str, parent: Optional[int] = None,
             dram=None, **attrs):
        """Span context; with ``dram`` set, attaches per-category
        access deltas accumulated inside the block."""
        span_id = self.begin(name, parent=parent, **attrs)
        before = dram.snapshot() if dram is not None else None
        try:
            yield span_id
        finally:
            extra = {}
            if before is not None:
                delta = dram.delta(before)
                extra = {"dram_" + k: v
                         for k, v in delta.as_dict().items()}
            self.end(span_id, **extra)

    # -- queries -------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    # -- export --------------------------------------------------------

    def export_jsonl(self) -> str:
        """One span per line, stable field order — byte-reproducible
        under a deterministic clock."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for span in self.spans)

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.export_jsonl())

    def to_chrome(self) -> Dict:
        return to_chrome_trace([span.to_dict() for span in self.spans])


# ----------------------------------------------------------------------
# file-format helpers (the ``repro trace`` CLI works on these)


def load_jsonl(path) -> List[Dict]:
    """Load a recorded trace file back into span dicts."""
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def to_chrome_trace(spans: List[Dict]) -> Dict:
    """Convert span dicts to the Chrome ``trace_event`` format.

    Spans become complete ("X") duration events, timestamped in
    microseconds; the connection attribute (when present) maps to the
    thread lane so concurrent connections render side by side.
    """
    events = []
    for span in spans:
        start = span["start"]
        end = span["end"] if span["end"] is not None else start
        attrs = span.get("attrs", {})
        tid = attrs.get("conn", 0)
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round((end - start) * 1e6, 3),
            "pid": 1,
            "tid": tid if isinstance(tid, int) else 0,
            "args": dict(attrs, id=span["id"], parent=span["parent"]),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_spans(spans: List[Dict], limit: int = 0) -> str:
    """Plain-text span dump: indentation follows parent links."""
    depth: Dict[int, int] = {}
    lines = ["%6s  %10s  %s" % ("id", "ms", "span")]
    shown = spans if limit <= 0 else spans[:limit]
    for span in shown:
        parent = span.get("parent")
        d = depth.get(parent, -1) + 1 if parent is not None else 0
        depth[span["id"]] = d
        start = span["start"]
        end = span["end"] if span["end"] is not None else start
        attrs = span.get("attrs", {})
        blob = " ".join("%s=%s" % (k, attrs[k]) for k in sorted(attrs))
        lines.append("%6d  %10.3f  %s%s%s"
                     % (span["id"], (end - start) * 1000.0,
                        "  " * d, span["name"],
                        (" [%s]" % blob) if blob else ""))
    if limit > 0 and len(spans) > limit:
        lines.append("... %d more span(s)" % (len(spans) - limit))
    return "\n".join(lines)
