"""Quad-tree sparse matrices (section 5.2).

The paper's symmetric quad-tree format (QTS) splits a matrix into four
quadrants and stores ``A11`` and ``A22`` in one subtree and ``A12`` and
``A21-transposed`` in the other, so a symmetric matrix's two off-diagonal
quadrants become the *same* sub-DAG and are stored once by deduplication.

Here the format is realized by linearizing the matrix in a **symmetric
Z-order**: recursively, a ``2^k`` square block lays out its quadrants in
the order ``A11, A22, A12, A21ᵀ`` (the A21 quadrant in transposed
coordinates). A block then occupies a contiguous, aligned word range, so
the canonical segment DAG over the linearized array *is* the quad-tree:

* an all-zero block is the zero subtree (free),
* equal blocks anywhere share one sub-DAG (self-similarity compaction),
* and for a symmetric matrix the A12 and A21ᵀ ranges hold identical
  words, so they share one sub-DAG — the QTS symmetry saving.

:class:`NzdMatrix` is the paper's non-zero dense (NZD) format: the
non-zero *pattern* as a bit-packed quad-tree plus a nearly-dense segment
of the non-zero values in traversal order, for matrices whose pattern is
self-similar but whose values are not.

Values are IEEE-754 doubles stored by their 64-bit pattern (0.0 is the
zero word, so zero elements vanish into zero subtrees).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.core.machine import Machine
from repro.segments import dag
from repro.segments.segment_map import SegmentFlags

_F64 = struct.Struct(">d")


def float_to_word(value: float) -> int:
    """IEEE-754 bit pattern of a double as a 64-bit word."""
    return struct.unpack(">Q", _F64.pack(value))[0]


def word_to_float(word: int) -> float:
    """Inverse of :func:`float_to_word`."""
    return _F64.unpack(struct.pack(">Q", word))[0]


def pad_dimension(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    size = 1
    while size < n:
        size *= 2
    return size


def sz_index(row: int, col: int, size: int) -> int:
    """Symmetric-Z-order flat index of element ``(row, col)``.

    ``size`` must be a power of two and the coordinates within it.
    Quadrant order per level: A11, A22, A12, A21ᵀ (A21 in transposed
    coordinates, the QTS layout).
    """
    offset = 0
    while size > 1:
        half = size // 2
        quad = half * half
        if row < half and col < half:
            pass  # A11 -> q0
        elif row >= half and col >= half:
            offset += quad  # A22 -> q1
            row -= half
            col -= half
        elif row < half:
            offset += 2 * quad  # A12 -> q2
            col -= half
        else:
            offset += 3 * quad  # A21 stored transposed -> q3
            row, col = col, row - half
        size = half
    return offset


def sz_coords(index: int, size: int) -> Tuple[int, int]:
    """Inverse of :func:`sz_index`."""
    levels: List[Tuple[int, int]] = []
    while size > 1:
        half = size // 2
        quad = half * half
        levels.append((index // quad, half))
        index %= quad
        size = half
    row = col = 0
    for q, half in reversed(levels):
        if q == 1:
            row, col = row + half, col + half
        elif q == 2:
            col += half
        elif q == 3:
            row, col = col + half, row  # undo the stored transpose
    return row, col


class QuadTreeMatrix:
    """A sparse matrix as one segment in symmetric-Z order (QTS)."""

    def __init__(self, machine: Machine, vsid: int, n_rows: int,
                 n_cols: int, size: int, nnz: int) -> None:
        self.machine = machine
        self.vsid = vsid
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.size = size  # padded power-of-two dimension
        self.nnz = nnz

    @classmethod
    def from_coo(cls, machine: Machine, n_rows: int, n_cols: int,
                 entries: Iterable[Tuple[int, int, float]]) -> "QuadTreeMatrix":
        """Build from ``(row, col, value)`` triples.

        One sparse rebuild pass: only subtrees containing non-zeros are
        ever materialized.
        """
        size = pad_dimension(max(n_rows, n_cols, 1))
        updates: Dict[int, int] = {}
        for row, col, value in entries:
            if value == 0.0:
                continue
            updates[sz_index(row, col, size)] = float_to_word(value)
        vsid = machine.create_segment([], flags=SegmentFlags.NONE)
        if updates:
            machine.write_words(vsid, updates)
            # Logical length is the full padded square; the DAG only
            # holds the non-zero structure.
            entry = machine.segmap.entry(vsid)
            entry.length = size * size
        return cls(machine, vsid, n_rows, n_cols, size, len(updates))

    @classmethod
    def from_dense(cls, machine: Machine, dense: "np.ndarray") -> "QuadTreeMatrix":
        """Build from a dense numpy array (zeros are elided)."""
        rows, cols = np.nonzero(dense)
        entries = [(int(r), int(c), float(dense[r, c])) for r, c in zip(rows, cols)]
        return cls.from_coo(machine, dense.shape[0], dense.shape[1], entries)

    # ------------------------------------------------------------------

    def get(self, row: int, col: int) -> float:
        """Element value (0.0 for structural zeros)."""
        word = self.machine.read_word(self.vsid, sz_index(row, col, self.size))
        return word_to_float(word) if word else 0.0

    def iter_nonzero(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(row, col, value)`` in symmetric-Z order."""
        with self.machine.snapshot(self.vsid) as snap:
            for index, word in snap.iter_nonzero():
                row, col = sz_coords(index, self.size)
                yield row, col, word_to_float(word)

    def to_dense(self) -> "np.ndarray":
        """Materialize as a dense numpy array (tests / small matrices)."""
        out = np.zeros((self.n_rows, self.n_cols))
        for row, col, value in self.iter_nonzero():
            if row < self.n_rows and col < self.n_cols:
                out[row, col] = value
        return out

    def spmv(self, x: "np.ndarray") -> "np.ndarray":
        """Sparse matrix - dense vector multiply ``y = A @ x``.

        Traverses the quad-tree once; shared (duplicate or symmetric)
        sub-DAGs hit in the HICAMP cache, which is where the paper's
        off-chip traffic reduction comes from. The result vector is
        accumulated in transient (per-processor) memory.
        """
        y = np.zeros(self.n_rows)
        for row, col, value in self.iter_nonzero():
            if row < self.n_rows and col < self.n_cols:
                y[row] += value * x[col]
        return y

    def footprint_lines(self) -> int:
        """Unique lines of this matrix's DAG (includes interior lines)."""
        entry = self.machine.segmap.entry(self.vsid)
        return dag.count_unique_lines(self.machine.mem, [entry.root])

    def footprint_bytes(self) -> int:
        """DRAM bytes attributable to this matrix's unique lines."""
        return self.footprint_lines() * self.machine.mem.line_bytes

    def equals(self, other: "QuadTreeMatrix") -> bool:
        """Structural equality by root compare."""
        return self.machine.segments_equal(self.vsid, other.vsid)

    def drop(self) -> None:
        """Release the matrix segment."""
        self.machine.drop_segment(self.vsid)


class NzdMatrix:
    """The non-zero dense format: bit-packed pattern + dense values.

    The pattern segment stores one bit per element in symmetric-Z order
    (64 elements per word), so pattern self-similarity and symmetry
    dedup even when the values differ; the value segment packs the
    non-zero values densely in traversal order.
    """

    def __init__(self, machine: Machine, pattern_vsid: int, values_vsid: int,
                 n_rows: int, n_cols: int, size: int, nnz: int) -> None:
        self.machine = machine
        self.pattern_vsid = pattern_vsid
        self.values_vsid = values_vsid
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.size = size
        self.nnz = nnz

    @classmethod
    def from_coo(cls, machine: Machine, n_rows: int, n_cols: int,
                 entries: Iterable[Tuple[int, int, float]]) -> "NzdMatrix":
        """Build from ``(row, col, value)`` triples."""
        size = pad_dimension(max(n_rows, n_cols, 1))
        cells: Dict[int, float] = {}
        for row, col, value in entries:
            if value != 0.0:
                cells[sz_index(row, col, size)] = value
        pattern_updates: Dict[int, int] = {}
        value_words: List[int] = []
        for index in sorted(cells):
            word_idx, bit = divmod(index, 64)
            pattern_updates[word_idx] = (
                pattern_updates.get(word_idx, 0) | (1 << (63 - bit))
            )
            value_words.append(float_to_word(cells[index]))
        pattern_vsid = machine.create_segment([])
        if pattern_updates:
            machine.write_words(pattern_vsid, pattern_updates)
            machine.segmap.entry(pattern_vsid).length = (size * size + 63) // 64
        values_vsid = machine.create_segment(value_words)
        return cls(machine, pattern_vsid, values_vsid, n_rows, n_cols,
                   size, len(cells))

    def iter_nonzero(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(row, col, value)`` in symmetric-Z order."""
        with self.machine.snapshot(self.pattern_vsid) as pattern, \
                self.machine.snapshot(self.values_vsid) as values:
            ordinal = 0
            for word_idx, mask in pattern.iter_nonzero():
                for bit in range(64):
                    if mask & (1 << (63 - bit)):
                        index = word_idx * 64 + bit
                        row, col = sz_coords(index, self.size)
                        yield row, col, word_to_float(values.read(ordinal))
                        ordinal += 1

    def spmv(self, x: "np.ndarray") -> "np.ndarray":
        """``y = A @ x`` via the pattern walk + dense value stream."""
        y = np.zeros(self.n_rows)
        for row, col, value in self.iter_nonzero():
            if row < self.n_rows and col < self.n_cols:
                y[row] += value * x[col]
        return y

    def to_dense(self) -> "np.ndarray":
        """Materialize as a dense numpy array."""
        out = np.zeros((self.n_rows, self.n_cols))
        for row, col, value in self.iter_nonzero():
            if row < self.n_rows and col < self.n_cols:
                out[row, col] = value
        return out

    def footprint_lines(self) -> int:
        """Unique lines across the pattern and value DAGs."""
        roots = [self.machine.segmap.entry(self.pattern_vsid).root,
                 self.machine.segmap.entry(self.values_vsid).root]
        return dag.count_unique_lines(self.machine.mem, roots)

    def footprint_bytes(self) -> int:
        """DRAM bytes attributable to this matrix's unique lines."""
        return self.footprint_lines() * self.machine.mem.line_bytes

    def drop(self) -> None:
        """Release both segments."""
        self.machine.drop_segment(self.pattern_vsid)
        self.machine.drop_segment(self.values_vsid)
