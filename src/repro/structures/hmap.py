"""The HICAMP map: a sparse array indexed by key-content identity
(sections 4.1 and 4.4).

A map is one segment. Each entry occupies a 4-word slot at an offset
*derived from the key segment's content-unique root*: deduplication
guarantees any given key content has exactly one root, so the offset is a
collision-free index — no hashing of the key, no chains, no rebalancing,
and a worst-case bound a conventional hash table cannot give.

Slot layout (``SLOT_BASE + 4 * index_of(key)``)::

    +0  key root entry      (pins the key content, keeps its PLID stable)
    +1  key shape word      (height / word length / byte length)
    +2  value root entry    (the paper's "root PLID for the associated value")
    +3  value shape word

Word offset 0 of the segment holds the entry count; being a plain data
word, concurrent inserts merge to the correct sum under merge-update.
Inserting writes a zero slot and deleting zeroes a non-zero slot, so
concurrent non-conflicting updates merge instead of aborting
(section 4.3).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.core.transactions import atomic_update
from repro.errors import MergeConflictError
from repro.memory.line import PlidRef
from repro.segments import dag
from repro.segments.segment_map import SegmentFlags
from repro.structures.anon import (
    AnonSegment,
    pack_meta,
    read_ref_slot,
    unpack_meta,
)

#: Word offsets 0..15 are reserved for map metadata (0 = entry count).
SLOT_BASE = 16
COUNT_OFFSET = 0

_WIDE_SPACE = 1 << 120  # index space for compacted (non-PLID) key roots


def _index_for_key(key: AnonSegment, byte_length: int) -> int:
    """Collision-free slot index from a key segment's identity.

    A key whose root is a plain line reference indexes by
    ``(PLID, height, byte length)`` — the content-uniqueness of segments
    makes this exact. Compacted roots (tiny keys) fall back to the full
    canonical encoding, placed in a disjoint, higher index space.
    """
    root = key.root
    if isinstance(root, PlidRef) and not root.path:
        return ((root.plid << 8 | key.height) << 36) | byte_length
    raw = dag.entry_key(root) + bytes((key.height,)) + byte_length.to_bytes(5, "big")
    return _WIDE_SPACE + int.from_bytes(raw, "big")


class HMap:
    """Map from byte-string keys to byte-string values."""

    def __init__(self, machine: Machine, vsid: int) -> None:
        self.machine = machine
        self.vsid = vsid

    @classmethod
    def create(cls, machine: Machine,
               flags: SegmentFlags = SegmentFlags.MERGE_UPDATE) -> "HMap":
        """Create an empty map (merge-update enabled by default)."""
        vsid = machine.create_segment([0] * SLOT_BASE, flags=flags)
        return cls(machine, vsid)

    # ------------------------------------------------------------------
    # internals

    def _key_segment(self, key: bytes) -> Tuple[AnonSegment, int]:
        """Build/find the key's segment; returns (handle, slot base)."""
        seg = AnonSegment.from_bytes(self.machine.mem, key)
        index = _index_for_key(seg, len(key))
        return seg, SLOT_BASE + 4 * index

    def _read_slot(self, snap, base: int) -> Optional[Tuple[object, int]]:
        """(value entry, value meta) at a slot, or None when absent."""
        meta = snap.read(base + 3)
        if meta == 0:
            return None
        return snap.read(base + 2), meta

    # ------------------------------------------------------------------
    # operations

    def get(self, key: bytes) -> Optional[bytes]:
        """Value for ``key``, or None. Reads a private snapshot of the
        map, so it needs no synchronization with concurrent updates
        (section 4.4)."""
        key_seg, base = self._key_segment(key)
        try:
            with self.machine.snapshot(self.vsid) as snap:
                slot = self._read_slot(snap, base)
                if slot is None:
                    return None
                value_entry, meta = slot
                return read_ref_slot(self.machine.mem, value_entry, meta)
        finally:
            key_seg.release()

    @staticmethod
    def _stage_put(it, base: int, key_seg: AnonSegment, key_len: int,
                   value_seg: AnonSegment, value_len: int) -> bool:
        """Stage one insert/update into an iterator register's transient
        buffer; returns True when the key was absent."""
        was_new = it.get(base + 3) == 0
        it.put(key_seg.root, offset=base)
        it.put(pack_meta(key_seg.height, key_seg.length, key_len),
               offset=base + 1)
        it.put(value_seg.root, offset=base + 2)
        it.put(pack_meta(value_seg.height, value_seg.length, value_len),
               offset=base + 3)
        if was_new:
            it.put((it.get(COUNT_OFFSET) + 1) & ((1 << 64) - 1),
                   offset=COUNT_OFFSET)
        return was_new

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or update; returns True when the key was new.

        Runs as an atomic update with merge, so concurrent puts/deletes
        of *different* keys never abort each other (section 4.3).
        """
        key_seg, base = self._key_segment(key)
        value_seg = AnonSegment.from_bytes(self.machine.mem, value)
        created = []

        def update(it):
            created.clear()
            created.append(self._stage_put(it, base, key_seg, len(key),
                                           value_seg, len(value)))

        try:
            self.machine.atomic_update(self.vsid, update)
        finally:
            key_seg.release()
            value_seg.release()
        return created[0]

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Insert/update many pairs in **one** atomic commit.

        All stages land in a single iterator register, so the whole batch
        is one bottom-up tree rebuild and one root CAS instead of one per
        key — the bulk-ingest path the router's commit queue coalesces
        into. Returns one was-new flag per item, in input order; a key
        repeated within the batch counts as new at most once (later
        stages observe the earlier transient store) and the last value
        wins, exactly as sequential puts would behave.
        """
        if not items:
            return []
        results = [False] * len(items)
        staged: List[Tuple[int, AnonSegment, int, AnonSegment, int]] = []
        try:
            for key, value in items:
                key_seg, base = self._key_segment(key)
                value_seg = AnonSegment.from_bytes(self.machine.mem, value)
                staged.append((base, key_seg, len(key),
                               value_seg, len(value)))

            def update(it):
                # atomic_update may re-run this on a lost CAS: start the
                # accumulator from scratch each attempt
                for i in range(len(results)):
                    results[i] = False
                for i, (base, kseg, klen, vseg, vlen) in enumerate(staged):
                    results[i] = self._stage_put(it, base, kseg, klen,
                                                 vseg, vlen)

            self.machine.atomic_update(self.vsid, update)
        finally:
            for _, key_seg, _, value_seg, _ in staged:
                key_seg.release()
                value_seg.release()
        return results

    def put_steps(self, key: bytes, value: bytes, max_retries: int = 16):
        """Generator variant of :meth:`put` for concurrency simulation.

        Yields once between taking the snapshot (staging the update) and
        committing, so a deterministic scheduler can interleave other
        clients into the update window — the conflict the section 5.1.1
        analysis prices. A lost CAS falls back to merge-update (mCAS); a
        *true* conflict (another client stored a different value for the
        same key in the window) re-executes at application level, as the
        paper prescribes. Returns the number of true-conflict retries.
        """
        from repro.core.transactions import mcas

        key_seg, base = self._key_segment(key)
        value_seg = AnonSegment.from_bytes(self.machine.mem, value)
        it = self.machine.iterator(self.vsid)
        true_conflicts = 0
        try:
            for _ in range(max_retries):
                self._stage_put(it, base, key_seg, len(key), value_seg,
                                len(value))
                yield  # the update window: other clients may commit here
                if it.try_commit():
                    return true_conflicts
                base_pair = (it.snapshot_root, it.height)
                new_root, new_height = it.build_updated_root()
                if mcas(self.machine.mem, self.machine.segmap, self.vsid,
                        base_pair, (new_root, new_height), it.length):
                    return true_conflicts
                # logically conflicting update: application-level retry
                true_conflicts += 1
                it.load(self.vsid)
            raise MergeConflictError(
                "update of key %r starved after %d true conflicts"
                % (key, max_retries))
        finally:
            self.machine.release_iterator(it)
            key_seg.release()
            value_seg.release()

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns False when it was absent."""
        key_seg, base = self._key_segment(key)
        removed = []

        def update(it):
            removed.clear()
            if it.get(base + 3) == 0:
                removed.append(False)
                return
            removed.append(True)
            for off in range(4):
                it.put(0, offset=base + off)
            it.put((it.get(COUNT_OFFSET) - 1) & ((1 << 64) - 1),
                   offset=COUNT_OFFSET)

        try:
            self.machine.atomic_update(self.vsid, update)
        finally:
            key_seg.release()
        return removed[0]

    def contains(self, key: bytes) -> bool:
        """Membership test."""
        key_seg, base = self._key_segment(key)
        try:
            with self.machine.snapshot(self.vsid) as snap:
                return snap.read(base + 3) != 0
        finally:
            key_seg.release()

    def __len__(self) -> int:
        return self.machine.read_word(self.vsid, COUNT_OFFSET)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` over a stable snapshot of the map."""
        with self.machine.snapshot(self.vsid) as snap:
            slots = {}
            for offset, word in snap.iter_nonzero(start=SLOT_BASE):
                slot_base = SLOT_BASE + ((offset - SLOT_BASE) // 4) * 4
                slots.setdefault(slot_base, {})[offset - slot_base] = word
            for slot_base in sorted(slots):
                words = slots[slot_base]
                if 3 not in words:
                    continue
                yield (read_ref_slot(self.machine.mem, words.get(0, 0),
                                     words.get(1, 0)),
                       read_ref_slot(self.machine.mem, words.get(2, 0),
                                     words[3]))

    def keys(self) -> List[bytes]:
        """All keys (snapshot order = index order)."""
        return [k for k, _ in self.items()]

    def drop(self) -> None:
        """Release the map segment (values/keys it pins are reclaimed)."""
        self.machine.drop_segment(self.vsid)
