"""Counter arrays with merge-update sum semantics (sections 3.4, 4.3).

A segment of plain data words whose updates go through mCAS: when two
threads concurrently add to counters — even the *same* counter — the
merge applies each thread's difference to the current value, so the
result is the sum and no application-level retry happens.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.machine import Machine
from repro.params import WORD_MASK
from repro.segments.segment_map import SegmentFlags


class HCounterArray:
    """A fixed-length array of 64-bit wrapping counters."""

    def __init__(self, machine: Machine, vsid: int) -> None:
        self.machine = machine
        self.vsid = vsid

    @classmethod
    def create(cls, machine: Machine, size: int,
               initial: Sequence[int] = ()) -> "HCounterArray":
        """Create ``size`` counters (optionally pre-initialized)."""
        words = list(initial) + [0] * (size - len(initial))
        vsid = machine.create_segment(words, flags=SegmentFlags.MERGE_UPDATE)
        return cls(machine, vsid)

    def __len__(self) -> int:
        return self.machine.segment_length(self.vsid)

    def get(self, index: int) -> int:
        """Current value of counter ``index``."""
        return self.machine.read_word(self.vsid, index)

    def add(self, index: int, delta: int = 1) -> None:
        """Atomically add ``delta``; concurrent adds merge into the sum."""
        self.add_many({index: delta})

    def add_many(self, deltas: Dict[int, int]) -> None:
        """Atomically apply several counter deltas in one commit."""

        def update(it):
            for index, delta in deltas.items():
                it.put((it.get(index) + delta) & WORD_MASK, offset=index)

        self.machine.atomic_update(self.vsid, update, merge=True)

    def snapshot_values(self) -> List[int]:
        """A consistent point-in-time copy of all counters."""
        return self.machine.read_segment(self.vsid)

    def drop(self) -> None:
        """Release the counter segment."""
        self.machine.drop_segment(self.vsid)
