"""Byte strings as HICAMP segments (Figure 1, section 2.2).

A string is stored as its raw characters packed into data words — no
header, so a string whose content appears at an aligned position inside
a longer string shares the longer string's lines outright, and two equal
strings are one DAG. Equality is a root compare: the paper's
"two web pages ... compared in a single compare instruction".
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import Machine
from repro.memory.line import pack_words, unpack_words
from repro.segments.segment_map import SegmentFlags


class HString:
    """A VSID-backed immutable byte string."""

    def __init__(self, machine: Machine, vsid: int, byte_length: int) -> None:
        self.machine = machine
        self.vsid = vsid
        self.byte_length = byte_length

    @classmethod
    def create(cls, machine: Machine, data: bytes,
               flags: SegmentFlags = SegmentFlags.NONE) -> "HString":
        """Create (or rediscover, via dedup) the segment for ``data``."""
        vsid = machine.create_segment(pack_words(data), flags=flags)
        return cls(machine, vsid, len(data))

    def to_bytes(self) -> bytes:
        """The string's content."""
        words = self.machine.read_segment(self.vsid)
        return unpack_words(words, self.byte_length)

    def __len__(self) -> int:
        return self.byte_length

    def __getitem__(self, index: int) -> int:
        """Byte at ``index`` (reads only the covering word's path)."""
        if not 0 <= index < self.byte_length:
            raise IndexError(index)
        word = self.machine.read_word(self.vsid, index // 8)
        shift = (7 - index % 8) * 8
        return (word >> shift) & 0xFF

    def equals(self, other: "HString") -> bool:
        """Content equality by root compare — O(1) in string length."""
        return (self.byte_length == other.byte_length
                and self.machine.segments_equal(self.vsid, other.vsid))

    def concat(self, other: "HString") -> "HString":
        """A new string ``self + other``.

        Word-aligned when ``len(self)`` is a multiple of 8, in which case
        the left part's lines are shared with the result.
        """
        data = self.to_bytes() + other.to_bytes()
        return HString.create(self.machine, data)

    def substring(self, start: int, end: Optional[int] = None) -> "HString":
        """A new string of ``self[start:end]`` (shares lines when the
        slice is line-aligned, as in Figure 1)."""
        data = self.to_bytes()[start:end]
        return HString.create(self.machine, data)

    def drop(self) -> None:
        """Release the string's segment reference."""
        self.machine.drop_segment(self.vsid)
