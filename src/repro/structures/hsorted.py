"""String-ordered maps — the paper's two-array construction (§4.1).

"An ordered collection indexed by a string value can be realized using
two arrays, one mapping the root PLID of the string segment to the
corresponding value and a second segment for storing the values in order
for iteration. The memory deduplication minimizes the space overhead
that this two-array solution would incur in a conventional memory."

:class:`HSortedMap` implements exactly that: an :class:`HMap` for point
lookups by key identity, plus an *order index* segment holding the key
root entries in lexicographic key order. The order index stores
references, so it adds four words per key, not a copy of the key — and
those reference words dedup against the map's own slots.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.core.machine import Machine
from repro.structures.anon import AnonSegment, pack_meta, read_ref_slot
from repro.structures.hmap import HMap


class HSortedMap:
    """Map with lexicographically ordered iteration and range scans."""

    def __init__(self, machine: Machine, kvp: HMap, index_vsid: int) -> None:
        self.machine = machine
        self.kvp = kvp
        self.index_vsid = index_vsid

    @classmethod
    def create(cls, machine: Machine) -> "HSortedMap":
        """Create an empty sorted map."""
        return cls(machine, HMap.create(machine), machine.create_segment([]))

    # ------------------------------------------------------------------
    # order-index helpers (2 words per key: key root entry + shape)

    def _index_keys(self) -> List[bytes]:
        """Decode the order index into its key byte strings."""
        out: List[bytes] = []
        length = self.machine.segment_length(self.index_vsid)
        if length == 0:
            return out
        with self.machine.snapshot(self.index_vsid) as snap:
            words = snap.read_range(0, length)
        for at in range(0, length, 2):
            meta = words[at + 1]
            if meta == 0:
                continue
            out.append(read_ref_slot(self.machine.mem, words[at], meta))
        return out

    def _rewrite_index(self, keys: List[bytes]) -> None:
        """Rebuild the order index for the given sorted key list."""
        segments = [AnonSegment.from_bytes(self.machine.mem, key)
                    for key in keys]
        try:
            updates = {}
            for i, (key, seg) in enumerate(zip(keys, segments)):
                updates[2 * i] = seg.root
                updates[2 * i + 1] = pack_meta(seg.height, seg.length,
                                               len(key))
            new_vsid = self.machine.create_segment([])
            if updates:
                self.machine.write_words(new_vsid, updates)
            old = self.index_vsid
            self.index_vsid = new_vsid
            self.machine.drop_segment(old)
        finally:
            for seg in segments:
                seg.release()

    # ------------------------------------------------------------------
    # operations

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or update; keeps the order index sorted."""
        was_new = self.kvp.put(key, value)
        if was_new:
            keys = self._index_keys()
            bisect.insort(keys, key)
            self._rewrite_index(keys)
        return was_new

    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup (through the identity-indexed map)."""
        return self.kvp.get(key)

    def delete(self, key: bytes) -> bool:
        """Remove a key from both structures."""
        removed = self.kvp.delete(key)
        if removed:
            keys = self._index_keys()
            keys.remove(key)
            self._rewrite_index(keys)
        return removed

    def __len__(self) -> int:
        return len(self.kvp)

    def items_ordered(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` in lexicographic key order."""
        for key in self._index_keys():
            value = self.kvp.get(key)
            if value is not None:
                yield key, value

    def range(self, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate keys in ``[lo, hi)`` in order."""
        keys = self._index_keys()
        start = bisect.bisect_left(keys, lo)
        stop = bisect.bisect_left(keys, hi)
        for key in keys[start:stop]:
            value = self.kvp.get(key)
            if value is not None:
                yield key, value

    def first(self) -> Optional[Tuple[bytes, bytes]]:
        """The smallest key and its value."""
        for item in self.items_ordered():
            return item
        return None

    def drop(self) -> None:
        """Release both structures."""
        self.kvp.drop()
        self.machine.drop_segment(self.index_vsid)
