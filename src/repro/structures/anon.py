"""Anonymous segments: content-unique DAGs without a segment-map entry.

Structures like :class:`repro.structures.hmap.HMap` embed sub-objects
(keys, values) directly by their root entry word, as the paper's
memcached stores "the root PLID for the associated value" in the map
(section 4.4). Such sub-objects need no VSID: the embedding line's
reference keeps them alive, and dedup makes equal contents share one
root.

:class:`AnonSegment` is the value-handle for such content: a
``(root entry, height, length)`` triple with an owned reference, plus the
packing helpers used to move byte strings in and out of word form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.memory.line import pack_words, unpack_words
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry


@dataclass
class AnonSegment:
    """A content-unique anonymous segment handle (owned root reference)."""

    mem: MemorySystem
    root: Entry
    height: int
    length: int  # logical length in words

    @classmethod
    def from_words(cls, mem: MemorySystem, words: Sequence) -> "AnonSegment":
        """Build (or find, via dedup) the canonical DAG for ``words``."""
        if len(words) == 0:
            return cls(mem, 0, 0, 0)
        root, height = dag.build_segment(mem, words)
        return cls(mem, root, height, len(words))

    @classmethod
    def from_bytes(cls, mem: MemorySystem, data: bytes) -> "AnonSegment":
        """Build from a byte string (packed big-endian into words).

        With the structural memo enabled, a repeated payload resolves to
        its memoized root in one probe — taking the same owned reference
        a full rebuild would have netted (the rebuild's intermediate
        dedup hits all cancel) — instead of packing and rebuilding the
        whole canonical DAG.
        """
        if not data:
            return cls(mem, 0, 0, 0)
        memo = mem.memo
        if not memo.enabled:
            return cls.from_words(mem, pack_words(data))
        cached = memo.get_segment(data)
        if cached is not None:
            root, height, length = cached
            dag.retain_entry(mem, root)
            return cls(mem, root, height, length)
        seg = cls.from_words(mem, pack_words(data))
        memo.put_segment(data, seg.root, seg.height, seg.length)
        return seg

    def words(self) -> List:
        """The full content as words."""
        if self.length == 0:
            return []
        return dag.gather_words(self.mem, self.root, self.height, 0, self.length)

    def to_bytes(self, byte_length: int) -> bytes:
        """Recover ``byte_length`` bytes of packed content."""
        return unpack_words(self.words(), byte_length)

    def read(self, offset: int):
        """One word of content."""
        if offset >= self.length:
            return 0
        return dag.read_word(self.mem, self.root, self.height, offset)

    def key(self) -> bytes:
        """Canonical identity: equal iff contents (and lengths) are equal."""
        return (dag.entry_key(self.root)
                + bytes((self.height,))
                + self.length.to_bytes(8, "big"))

    def retain(self) -> "AnonSegment":
        """Take an extra owned reference (for a second handle)."""
        dag.retain_entry(self.mem, self.root)
        return AnonSegment(self.mem, self.root, self.height, self.length)

    def release(self) -> None:
        """Drop the handle's reference."""
        dag.release_entry(self.mem, self.root)
        self.root = 0

    def __enter__(self) -> "AnonSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def pack_meta(height: int, word_length: int, byte_length: int) -> int:
    """Pack an anonymous segment's shape into one data word.

    Layout: ``[height:8][word_length:24][byte_length:31][present:1]``.
    The low ``present`` bit keeps the word non-zero even for empty
    content, so "mapped to empty" and "absent" stay distinct.
    """
    if word_length >= 1 << 24 or byte_length >= 1 << 31:
        raise ValueError("segment too large for packed metadata")
    return (height << 56) | (word_length << 32) | (byte_length << 1) | 1


def unpack_meta(meta: int) -> Tuple[int, int, int]:
    """Inverse of :func:`pack_meta`: ``(height, word_length, byte_length)``."""
    if not meta & 1:
        raise ValueError("not a packed metadata word: %r" % meta)
    return (meta >> 56) & 0xFF, (meta >> 32) & 0xFFFFFF, (meta >> 1) & 0x7FFFFFFF


def read_ref_slot(mem: MemorySystem, entry, meta: int) -> bytes:
    """Materialize the bytes referenced by an ``(entry, meta)`` slot pair.

    The common convention of HMap, HQueue, HOrderedCollection and the
    database views: a slot stores a sub-object as its root entry word
    plus a :func:`pack_meta` shape word. The caller must hold the slot's
    containing version alive (e.g. via a snapshot) while reading.
    """
    height, word_len, byte_len = unpack_meta(meta)
    if word_len == 0:
        return b""
    words = dag.gather_words(mem, entry, height, 0, word_len)
    return unpack_words(words, byte_len)
