"""Growable word arrays on segments (section 4.1).

Unlike a conventional array, an HArray extends without reallocation or
copy (the DAG grows by root levels), a buffer overflow cannot overwrite a
neighbouring object (each object is its own protected segment), and a
sparse array is automatically compact (zero subtrees collapse; path and
data compaction shorten what remains).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.machine import Machine
from repro.segments.segment_map import SegmentFlags


class HArray:
    """A VSID-backed array of 64-bit words."""

    def __init__(self, machine: Machine, vsid: int) -> None:
        self.machine = machine
        self.vsid = vsid

    @classmethod
    def create(cls, machine: Machine, values: Sequence = (),
               flags: SegmentFlags = SegmentFlags.NONE) -> "HArray":
        """Create an array holding ``values``."""
        return cls(machine, machine.create_segment(list(values), flags=flags))

    def __len__(self) -> int:
        return self.machine.segment_length(self.vsid)

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self.machine.read_word(self.vsid, index)

    def __setitem__(self, index: int, value) -> None:
        if index < 0:
            index += len(self)
        if index < 0:
            raise IndexError(index)
        self.machine.write_word(self.vsid, index, value)

    def append(self, value) -> None:
        """Append one element — no reallocation, the DAG just extends."""
        self.machine.append_words(self.vsid, [value])

    def extend(self, values: Iterable) -> None:
        """Append many elements in one rebuild pass."""
        self.machine.append_words(self.vsid, list(values))

    def to_list(self) -> List:
        """The whole content as a Python list."""
        return self.machine.read_segment(self.vsid)

    def iter_nonzero(self) -> Iterator[Tuple[int, object]]:
        """Iterate ``(index, value)`` skipping zero elements — the
        iterator-register sparse scan of section 3.3."""
        with self.machine.snapshot(self.vsid) as snap:
            for item in snap.iter_nonzero():
                yield item

    def equals(self, other: "HArray") -> bool:
        """Content equality by root compare."""
        return self.machine.segments_equal(self.vsid, other.vsid)

    def drop(self) -> None:
        """Release the array's segment reference."""
        self.machine.drop_segment(self.vsid)
