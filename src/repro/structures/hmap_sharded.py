"""The sharded key-value map (section 5.1.1, closing paragraph).

"If contention on a map is high for merge-updates, the map can be split
into an array of segments (i.e. a segment that points to the
subsegments), indexed by several bits of the key PLID, while the rest of
key PLID bits can be used as offset within the selected subsegment. Such
a split would reduce probability of conflict and re-execution even
further."

:class:`ShardedHMap` realizes that: a directory of ``2**shard_bits``
sub-maps, the shard selected by low bits of the key's content-unique
index. Updates to keys in different shards never even share a CAS
target, so the conflict window shrinks by the shard count.
"""

from __future__ import annotations

import zlib

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.structures.anon import AnonSegment
from repro.structures.hmap import HMap, _index_for_key


class ShardedHMap:
    """A map split across ``2**shard_bits`` independent sub-maps."""

    def __init__(self, machine: Machine, shards: List[HMap],
                 shard_bits: int) -> None:
        self.machine = machine
        self.shards = shards
        self.shard_bits = shard_bits

    @classmethod
    def create(cls, machine: Machine, shard_bits: int = 2) -> "ShardedHMap":
        """Create ``2**shard_bits`` shards."""
        if not 0 <= shard_bits <= 8:
            raise ValueError("shard_bits out of range")
        shards = [HMap.create(machine) for _ in range(1 << shard_bits)]
        return cls(machine, shards, shard_bits)

    # ------------------------------------------------------------------

    def _with_shard(self, key: bytes, op):
        # The key segment must stay alive across the whole operation:
        # its content-unique index (and hence shard choice) is only
        # stable while its lines are pinned.
        seg = AnonSegment.from_bytes(self.machine.mem, key)
        try:
            return op(self.shards[self._selector(seg, len(key))])
        finally:
            seg.release()

    def _selector(self, seg: AnonSegment, key_len: int) -> int:
        index = _index_for_key(seg, key_len)
        # "indexed by several bits of the key PLID": fold the
        # content-unique identity so the selector bits vary for both
        # line-referenced and inline-compacted key roots
        digest = zlib.crc32(index.to_bytes((index.bit_length() + 7) // 8
                                           or 1, "big"))
        return digest & ((1 << self.shard_bits) - 1)

    def shard_for(self, key: bytes) -> HMap:
        """The sub-map that holds ``key`` (stable for a given content)."""
        return self._with_shard(key, lambda shard: shard)

    def get(self, key: bytes) -> Optional[bytes]:
        """Value for ``key`` or None."""
        return self._with_shard(key, lambda shard: shard.get(key))

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or update; returns True when new."""
        return self._with_shard(key, lambda shard: shard.put(key, value))

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Bulk insert/update: one atomic commit *per touched shard*.

        Items are grouped by owning shard and each group goes through
        :meth:`HMap.put_many`, so a batch of N keys costs at most
        ``2**shard_bits`` tree rebuilds instead of N. Returns was-new
        flags in input order.
        """
        results = [False] * len(items)
        groups: Dict[int, List[Tuple[int, bytes, bytes]]] = {}
        # Pin every key segment until its group has committed: the shard
        # selector is only stable while the key's lines stay allocated
        # (afterwards the inserted map entry pins them).
        pins: List[AnonSegment] = []
        try:
            for idx, (key, value) in enumerate(items):
                seg = AnonSegment.from_bytes(self.machine.mem, key)
                pins.append(seg)
                selector = self._selector(seg, len(key))
                groups.setdefault(selector, []).append((idx, key, value))
            for selector in sorted(groups):
                group = groups[selector]
                flags = self.shards[selector].put_many(
                    [(k, v) for _, k, v in group])
                for (idx, _, _), created in zip(group, flags):
                    results[idx] = created
        finally:
            for seg in pins:
                seg.release()
        return results

    def put_steps(self, key: bytes, value: bytes, max_retries: int = 16):
        """Generator variant of :meth:`put` (see :meth:`HMap.put_steps`).

        Routed to the owning shard, so concurrent updates in *different*
        shards never even share a CAS target — the update window only
        interleaves with same-shard clients.
        """
        retries = yield from self.shard_for(key).put_steps(
            key, value, max_retries)
        return retries

    def delete(self, key: bytes) -> bool:
        """Remove ``key``."""
        return self._with_shard(key, lambda shard: shard.delete(key))

    def contains(self, key: bytes) -> bool:
        """Membership test."""
        return self._with_shard(key, lambda shard: shard.contains(key))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All items (shard by shard; per-shard snapshot consistency)."""
        for shard in self.shards:
            for item in shard.items():
                yield item

    def drop(self) -> None:
        """Release every shard."""
        for shard in self.shards:
            shard.drop()


def measure_conflicts(machine: Machine) -> Tuple[int, int]:
    """(CAS attempts, CAS failures) observed by the machine's map."""
    return machine.segmap.cas_attempts, machine.segmap.cas_failures
