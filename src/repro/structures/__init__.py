"""Typed data structures on HICAMP segments (section 4).

Every structure here is a thin software convention over segments — the
paper's point is that the architecture's segments, iterator registers and
merge-update make these structures concurrency-safe without locks:

* :class:`HString` — byte strings as pure content segments (Figure 1);
* :class:`HArray` — growable word arrays (section 4.1);
* :class:`HMap` — the sparse-array map indexed by the content-unique
  identity of the key segment (sections 4.1, 4.4);
* :class:`HQueue` — a merge-update queue with counter-tracked head/tail
  (section 4.3);
* :class:`HCounterArray` — counters whose concurrent increments merge
  into sums (sections 3.4, 4.3);
* :class:`QuadTreeMatrix` — the QTS/NZD sparse-matrix formats
  (section 5.2).
"""

from repro.structures.anon import AnonSegment
from repro.structures.hstring import HString
from repro.structures.harray import HArray
from repro.structures.hmap import HMap
from repro.structures.hqueue import HQueue
from repro.structures.hcounter import HCounterArray
from repro.structures.hmatrix import QuadTreeMatrix, NzdMatrix
from repro.structures.hordered import HOrderedCollection
from repro.structures.hmap_sharded import ShardedHMap
from repro.structures.hsorted import HSortedMap

__all__ = [
    "AnonSegment",
    "HString",
    "HArray",
    "HMap",
    "HQueue",
    "HCounterArray",
    "QuadTreeMatrix",
    "NzdMatrix",
    "HOrderedCollection",
    "ShardedHMap",
    "HSortedMap",
]
