"""A high-contention queue on merge-update (section 4.3).

The queue is one segment: word 0 is the head counter, word 1 the tail
counter, and slots follow. An enqueue claims the slot named by the tail
counter and bumps the counter; merge-update resolves concurrent enqueues
that landed in *different* slots (counter differences sum), and two
enqueues racing for the *same* slot produce a reference conflict that
aborts exactly one of them into a retry with a fresh tail.

Items are stored as anonymous segment entries plus a shape word, like
map values, so same-slot races are detected by the tagged-field rule
even when two items have equal-looking payload lengths.
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import Machine
from repro.memory.line import unpack_words
from repro.segments import dag
from repro.segments.segment_map import SegmentFlags
from repro.structures.anon import AnonSegment, pack_meta, unpack_meta

HEAD = 0
TAIL = 1
SLOT_BASE = 8


class HQueue:
    """An unbounded FIFO queue of byte strings."""

    def __init__(self, machine: Machine, vsid: int) -> None:
        self.machine = machine
        self.vsid = vsid

    @classmethod
    def create(cls, machine: Machine) -> "HQueue":
        """Create an empty queue (merge-update enabled)."""
        vsid = machine.create_segment([0] * SLOT_BASE,
                                      flags=SegmentFlags.MERGE_UPDATE)
        return cls(machine, vsid)

    def __len__(self) -> int:
        with self.machine.snapshot(self.vsid) as snap:
            return snap.read(TAIL) - snap.read(HEAD)

    def enqueue(self, item: bytes) -> None:
        """Append an item; concurrent enqueues merge or retry safely."""
        seg = AnonSegment.from_bytes(self.machine.mem, item)

        def update(it):
            tail = it.get(TAIL)
            base = SLOT_BASE + 2 * tail
            it.put(seg.root, offset=base)
            it.put(pack_meta(seg.height, seg.length, len(item)), offset=base + 1)
            it.put(tail + 1, offset=TAIL)

        try:
            self.machine.atomic_update(self.vsid, update, merge=True)
        finally:
            seg.release()

    def dequeue(self) -> Optional[bytes]:
        """Pop the oldest item, or None when empty.

        Dequeue uses plain CAS (no merge): two concurrent dequeues of the
        same slot must serialize, or both would observe the same item.
        Empty slots below the tail — possible when concurrent enqueues of
        identical content coalesced under merge (content-addressed
        identity cannot tell two equal items apart) — are skipped.
        """
        out = []

        def update(it):
            out.clear()
            head, tail = it.get(HEAD), it.get(TAIL)
            while head < tail and it.get(SLOT_BASE + 2 * head + 1) == 0:
                head += 1  # skip coalesced slot
            if head >= tail:
                out.append(None)
                if head != it.get(HEAD):
                    it.put(head, offset=HEAD)
                return
            base = SLOT_BASE + 2 * head
            entry, meta = it.get(base), it.get(base + 1)
            height, word_len, byte_len = unpack_meta(meta)
            if word_len:
                words = dag.gather_words(self.machine.mem, entry, height,
                                         0, word_len)
                out.append(unpack_words(words, byte_len))
            else:
                out.append(b"")
            it.put(0, offset=base)
            it.put(0, offset=base + 1)
            it.put(head + 1, offset=HEAD)

        self.machine.atomic_update(self.vsid, update, merge=False)
        return out[0]

    def peek(self) -> Optional[bytes]:
        """The oldest item without removing it."""
        with self.machine.snapshot(self.vsid) as snap:
            head, tail = snap.read(HEAD), snap.read(TAIL)
            while head < tail and snap.read(SLOT_BASE + 2 * head + 1) == 0:
                head += 1  # skip coalesced slot
            if head >= tail:
                return None
            base = SLOT_BASE + 2 * head
            entry, meta = snap.read(base), snap.read(base + 1)
            height, word_len, byte_len = unpack_meta(meta)
            if not word_len:
                return b""
            words = dag.gather_words(self.machine.mem, entry, height, 0, word_len)
            return unpack_words(words, byte_len)

    def drop(self) -> None:
        """Release the queue segment."""
        self.machine.drop_segment(self.vsid)
