"""Timestamp-ordered collections (the section 4.1 example).

"An ordered collection of objects indexed by a 64-bit time stamp can be
efficiently represented as a segment with the VSID of the object stored
at the numeric index equal to its time stamp. In contrast, the same
collection in a conventional memory system would require a red-black
tree or similar data structure."

Each element occupies a two-word slot at ``2 * timestamp``: the value's
root entry and a shape word. Path compaction makes the astronomically
sparse index cheap (a single element costs one leaf line plus a
compacted path), and iterator-register next-non-null gives in-order
traversal and range queries directly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.machine import Machine
from repro.segments.segment_map import SegmentFlags
from repro.structures.anon import AnonSegment, pack_meta, read_ref_slot


class HOrderedCollection:
    """A collection of byte-string payloads ordered by 64-bit timestamp."""

    def __init__(self, machine: Machine, vsid: int) -> None:
        self.machine = machine
        self.vsid = vsid

    @classmethod
    def create(cls, machine: Machine) -> "HOrderedCollection":
        """Create an empty collection (merge-update enabled: concurrent
        inserts at distinct timestamps merge)."""
        vsid = machine.create_segment([0], flags=SegmentFlags.MERGE_UPDATE)
        return cls(machine, vsid)

    @staticmethod
    def _slot(timestamp: int) -> int:
        if timestamp < 0:
            raise ValueError("timestamps are unsigned")
        return 2 * timestamp + 2  # word 0/1 reserved

    def insert(self, timestamp: int, payload: bytes) -> None:
        """Store ``payload`` at ``timestamp`` (replaces an existing one)."""
        seg = AnonSegment.from_bytes(self.machine.mem, payload)
        base = self._slot(timestamp)

        def update(it):
            it.put(seg.root, offset=base)
            it.put(pack_meta(seg.height, seg.length, len(payload)),
                   offset=base + 1)

        try:
            self.machine.atomic_update(self.vsid, update, merge=True)
        finally:
            seg.release()

    def get(self, timestamp: int) -> Optional[bytes]:
        """Payload at exactly ``timestamp``, or None."""
        base = self._slot(timestamp)
        with self.machine.snapshot(self.vsid) as snap:
            meta = snap.read(base + 1)
            if meta == 0:
                return None
            return read_ref_slot(self.machine.mem, snap.read(base), meta)

    def delete(self, timestamp: int) -> bool:
        """Remove the element at ``timestamp``."""
        base = self._slot(timestamp)
        removed: List[bool] = []

        def update(it):
            removed.clear()
            if it.get(base + 1) == 0:
                removed.append(False)
                return
            removed.append(True)
            it.put(0, offset=base)
            it.put(0, offset=base + 1)

        self.machine.atomic_update(self.vsid, update, merge=True)
        return removed[0]

    def scan(self, start: int = 0,
             stop: Optional[int] = None) -> Iterator[Tuple[int, bytes]]:
        """Iterate ``(timestamp, payload)`` in timestamp order.

        This is the red-black-tree replacement: an in-order range scan is
        just next-non-null over the sparse segment, against a stable
        snapshot.
        """
        first = self._slot(start)
        limit = None if stop is None else self._slot(stop)
        with self.machine.snapshot(self.vsid) as snap:
            pending: dict = {}
            for offset, word in snap.iter_nonzero(start=first):
                if limit is not None and offset >= limit:
                    break
                slot = (offset - 2) // 2
                pending.setdefault(slot, {})[(offset - 2) % 2] = word
                entry = pending[slot]
                if 1 in entry:
                    yield slot, read_ref_slot(self.machine.mem,
                                              entry.get(0, 0), entry[1])
                    del pending[slot]

    def first_at_or_after(self, timestamp: int) -> Optional[Tuple[int, bytes]]:
        """The earliest element with timestamp >= the given one."""
        for item in self.scan(start=timestamp):
            return item
        return None

    def drop(self) -> None:
        """Release the collection segment."""
        self.machine.drop_segment(self.vsid)
