"""Exception hierarchy for the HICAMP simulator.

All library-raised errors derive from :class:`HicampError` so callers can
catch simulator failures distinctly from programming errors.
"""


class HicampError(Exception):
    """Base class for all HICAMP simulator errors."""


class MemoryExhaustedError(HicampError):
    """The deduplicated store (including its overflow area) is full."""


class BadPlidError(HicampError):
    """A PLID does not name an allocated line (dangling or forged)."""


class BadVsidError(HicampError):
    """A VSID does not name a live segment-map entry."""


class ReadOnlyError(HicampError):
    """Attempted update through a read-only segment reference."""


class CasFailedError(HicampError):
    """A compare-and-swap on a segment-map root PLID lost a race."""


class MergeConflictError(HicampError):
    """Merge-update found a true data conflict (distinct PLIDs stored
    into the same field by concurrent updates, section 3.4)."""


class IteratorStateError(HicampError):
    """An iterator register was used in an invalid state (e.g. committing
    an unloaded register, or writing through a read-only reference)."""


class SegmentRangeError(HicampError):
    """An offset falls outside a segment's addressable range."""


class IntegrityError(HicampError):
    """A line read from DRAM fails the content-hash check (section 3.1:
    recomputing the hash of the contents and comparing it to the hash
    bucket the line was read from detects corruption beyond ECC)."""


class PersistenceError(HicampError):
    """A machine image cannot be read: unknown format version, truncated
    document, or a field that does not reconstruct."""


class ReplicationError(HicampError):
    """The replication protocol was violated: a frame references a line
    the receiver does not hold, a handshake disagrees on geometry, or a
    wire frame cannot be decoded."""
