"""repro — a reproduction of HICAMP (ASPLOS 2012).

HICAMP (Hierarchical Immutable Content Addressable Memory Processor) is a
memory architecture built on content-unique immutable lines, canonical
DAG-structured segments, and a virtual segment map, giving hardware-level
snapshot isolation, O(1) structural equality, memory deduplication, and
non-blocking atomic update with merge support.

Quick start::

    from repro import Machine
    from repro.structures import HString

    m = Machine()
    s1 = HString.create(m, b"This is a long string containing Another string")
    s2 = HString.create(m, b"Another string")
    # the substring shares every line of the original (Figure 1)

Public layers:

* :class:`repro.Machine` — the machine facade (segments, iterators, CAS);
* :mod:`repro.structures` — arrays, maps, strings, queues, counters,
  quad-tree matrices built on segments;
* :mod:`repro.apps` — the paper's evaluated applications (memcached,
  sparse-matrix kernels, VM-hosting dedup study);
* :mod:`repro.workloads` — synthetic dataset/trace generators;
* :mod:`repro.analysis` — analytical models and table/figure rendering.
"""

from repro.core.machine import Machine
from repro.core.snapshot import Snapshot
from repro.core.transactions import MultiSegmentCommit, atomic_update, mcas
from repro.errors import (
    BadPlidError,
    BadVsidError,
    CasFailedError,
    HicampError,
    IteratorStateError,
    MemoryExhaustedError,
    MergeConflictError,
    ReadOnlyError,
    SegmentRangeError,
)
from repro.params import (
    CacheGeometry,
    ConventionalConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.segments.segment_map import SegmentFlags

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "Snapshot",
    "MultiSegmentCommit",
    "atomic_update",
    "mcas",
    "SegmentFlags",
    "MachineConfig",
    "MemoryConfig",
    "CacheGeometry",
    "ConventionalConfig",
    "HicampError",
    "MemoryExhaustedError",
    "BadPlidError",
    "BadVsidError",
    "ReadOnlyError",
    "CasFailedError",
    "MergeConflictError",
    "IteratorStateError",
    "SegmentRangeError",
    "__version__",
]
