"""A small in-memory database on the HICAMP structures.

What the paper sketches (section 4.4): "a client thread with a read-only
reference to the database can access the state and process a query with
its own private snapshot of the database state. It constructs a view as
a new segment that specifies the result of the query, while referencing
data directly in the database itself. Updates can be performed either by
a designated updater thread or by the (trusted) client threads."

Realization:

* a **table** is an :class:`~repro.structures.hmap.HMap` from primary key
  to an encoded row (named byte-string fields);
* a **query** runs against a snapshot of the table segment — concurrent
  commits cannot tear it (the bank-audit property of section 2.2);
* a **view** is a fresh segment whose slots hold the *root entries of
  the matching rows' key/value segments* — result sets reference the
  base data, they do not copy it, and they stay valid (pinned by the
  view's own lines) even if the rows are later deleted;
* **transactions** across tables use
  :class:`~repro.core.transactions.MultiSegmentCommit`: buffered row
  updates become visible all-or-nothing.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.core.transactions import MultiSegmentCommit
from repro.structures.anon import AnonSegment, pack_meta, read_ref_slot
from repro.structures.hmap import HMap

_LEN = struct.Struct(">I")

Row = Dict[str, bytes]


def encode_row(schema: Sequence[str], row: Row) -> bytes:
    """Encode named fields as length-prefixed byte strings."""
    missing = set(row) - set(schema)
    if missing:
        raise KeyError("fields not in schema: %s" % sorted(missing))
    out = []
    for column in schema:
        value = row.get(column, b"")
        out.append(_LEN.pack(len(value)))
        out.append(value)
    return b"".join(out)


def decode_row(schema: Sequence[str], data: bytes) -> Row:
    """Inverse of :func:`encode_row`."""
    row: Row = {}
    at = 0
    for column in schema:
        (n,) = _LEN.unpack_from(data, at)
        at += 4
        row[column] = data[at:at + n]
        at += n
    return row


class Table:
    """One table: an HMap of primary key → encoded row."""

    def __init__(self, machine: Machine, name: str,
                 schema: Sequence[str]) -> None:
        self.machine = machine
        self.name = name
        self.schema = tuple(schema)
        self.kvp = HMap.create(machine)

    @property
    def vsid(self) -> int:
        """The table's map segment (transaction footprint handle)."""
        return self.kvp.vsid

    def insert(self, key: bytes, row: Row) -> None:
        """Insert or replace one row (atomic)."""
        self.kvp.put(key, encode_row(self.schema, row))

    def get(self, key: bytes) -> Optional[Row]:
        """Fetch one row by primary key."""
        data = self.kvp.get(key)
        if data is None:
            return None
        return decode_row(self.schema, data)

    def delete(self, key: bytes) -> bool:
        """Delete one row."""
        return self.kvp.delete(key)

    def rows(self) -> Iterator[Tuple[bytes, Row]]:
        """Iterate all rows over a stable snapshot."""
        for key, data in self.kvp.items():
            yield key, decode_row(self.schema, data)

    def __len__(self) -> int:
        return len(self.kvp)


class QueryView:
    """A query result: a segment of references into the base data.

    Slot ``i`` holds the matching row's key and value root entries plus
    shape words — four words per result, regardless of row size. The
    view's lines own references on those entries, so the result set
    remains readable even if the base rows are deleted afterwards.
    """

    def __init__(self, machine: Machine, table: Table, vsid: int,
                 count: int) -> None:
        self.machine = machine
        self.table = table
        self.vsid = vsid
        self.count = count

    def __len__(self) -> int:
        return self.count

    def rows(self) -> Iterator[Tuple[bytes, Row]]:
        """Materialize the referenced rows (reads through the view)."""
        with self.machine.snapshot(self.vsid) as snap:
            for i in range(self.count):
                base = 4 * i
                key = read_ref_slot(self.machine.mem, snap.read(base),
                                    snap.read(base + 1))
                data = read_ref_slot(self.machine.mem, snap.read(base + 2),
                                     snap.read(base + 3))
                yield key, decode_row(self.table.schema, data)

    def footprint_words(self) -> int:
        """Words the view itself occupies (4 per result row)."""
        return self.machine.segment_length(self.vsid)

    def drop(self) -> None:
        """Release the view (unpins the referenced versions)."""
        self.machine.drop_segment(self.vsid)


class Database:
    """Named tables plus snapshot queries and multi-table transactions."""

    def __init__(self, machine: Optional[Machine] = None) -> None:
        self.machine = machine or Machine()
        self.tables: Dict[str, Table] = {}

    def create_table(self, name: str, schema: Sequence[str]) -> Table:
        """Create a table; names are unique."""
        if name in self.tables:
            raise ValueError("table %r exists" % name)
        table = Table(self.machine, name, schema)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        return self.tables[name]

    # ------------------------------------------------------------------

    def query(self, table_name: str,
              predicate: Callable[[bytes, Row], bool]) -> QueryView:
        """Run a filter query against a private snapshot of the table.

        The long-running-read guarantee: rows committed after the query
        began are not seen; rows deleted after it began still are.
        """
        table = self.tables[table_name]
        machine = self.machine
        updates: Dict[int, object] = {}
        count = 0
        # iterate the table's snapshot; collect references, not copies
        from repro.structures.hmap import SLOT_BASE
        with machine.snapshot(table.kvp.vsid) as snap:
            slots: Dict[int, Dict[int, object]] = {}
            for offset, word in snap.iter_nonzero(start=SLOT_BASE):
                slot_base = SLOT_BASE + ((offset - SLOT_BASE) // 4) * 4
                slots.setdefault(slot_base, {})[offset - slot_base] = word
            for slot_base in sorted(slots):
                words = slots[slot_base]
                if 3 not in words:
                    continue
                k_entry, k_meta = words.get(0, 0), words.get(1, 0)
                v_entry, v_meta = words.get(2, 0), words[3]
                key = read_ref_slot(machine.mem, k_entry, k_meta)
                row = decode_row(table.schema,
                                 read_ref_slot(machine.mem, v_entry, v_meta))
                if predicate(key, row):
                    base = 4 * count
                    updates[base] = k_entry
                    updates[base + 1] = k_meta
                    updates[base + 2] = v_entry
                    updates[base + 3] = v_meta
                    count += 1
            # build the view while the snapshot still pins the entries;
            # the view's own lines take references as they materialize
            view_vsid = machine.create_segment([])
            if updates:
                machine.write_words(view_vsid, updates)
        return QueryView(machine, table, view_vsid, count)

    # ------------------------------------------------------------------

    class Transaction:
        """Buffered multi-table updates, committed all-or-nothing."""

        def __init__(self, db: "Database") -> None:
            self.db = db
            self._writes: List[Tuple[Table, bytes, Optional[Row]]] = []
            self._txn = MultiSegmentCommit(db.machine.mem, db.machine.segmap)
            for table in db.tables.values():
                self._txn.enroll(table.vsid)

        def insert(self, table_name: str, key: bytes, row: Row) -> None:
            """Buffer an insert/replace."""
            self._writes.append((self.db.tables[table_name], key, row))

        def delete(self, table_name: str, key: bytes) -> None:
            """Buffer a delete."""
            self._writes.append((self.db.tables[table_name], key, None))

        def commit(self) -> bool:
            """Apply every buffered write atomically.

            Returns False (nothing applied) if any enrolled table changed
            since the transaction began.
            """
            machine = self.db.machine
            # build new versions of each touched table privately
            by_table: Dict[Table, List[Tuple[bytes, Optional[Row]]]] = {}
            for table, key, row in self._writes:
                by_table.setdefault(table, []).append((key, row))
            from repro.structures.hmap import (
                COUNT_OFFSET,
                SLOT_BASE,
                _index_for_key,
            )

            # handles must outlive build_updated_root: the transient
            # buffer holds bare reference words until the rebuild
            # materializes lines that own them
            handles: List[AnonSegment] = []
            try:
                for table, ops in by_table.items():
                    it = machine.iterator(table.vsid)
                    try:
                        for key, row in ops:
                            key_seg = AnonSegment.from_bytes(machine.mem, key)
                            handles.append(key_seg)
                            base = SLOT_BASE + 4 * _index_for_key(
                                key_seg, len(key))
                            was_new = it.get(base + 3) == 0
                            if row is None:
                                if not was_new:
                                    for off in range(4):
                                        it.put(0, offset=base + off)
                                    it.put(it.get(COUNT_OFFSET) - 1,
                                           offset=COUNT_OFFSET)
                                continue
                            data = encode_row(table.schema, row)
                            value_seg = AnonSegment.from_bytes(machine.mem,
                                                               data)
                            handles.append(value_seg)
                            it.put(key_seg.root, offset=base)
                            it.put(pack_meta(key_seg.height, key_seg.length,
                                             len(key)), offset=base + 1)
                            it.put(value_seg.root, offset=base + 2)
                            it.put(pack_meta(value_seg.height,
                                             value_seg.length, len(data)),
                                   offset=base + 3)
                            if was_new:
                                it.put(it.get(COUNT_OFFSET) + 1,
                                       offset=COUNT_OFFSET)
                        new_root, new_height = it.build_updated_root()
                        self._txn.stage(table.vsid, new_root, new_height,
                                        it.length)
                    finally:
                        machine.release_iterator(it)
                return self._txn.commit()
            finally:
                for handle in handles:
                    handle.release()

        def abort(self) -> None:
            """Discard buffered writes."""
            self._txn.abort()
            self._writes.clear()

    def begin(self) -> "Database.Transaction":
        """Start a multi-table transaction."""
        return Database.Transaction(self)
