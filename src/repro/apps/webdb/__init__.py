"""An in-memory database on HICAMP (the intro's web/database scenario
and the last paragraph of section 4.4).

Client threads hold read-only references and process queries against
private snapshots; query results are *views* — new segments whose
entries reference the row data in place, copying nothing; updates commit
atomically through the segment map, and multi-table transactions commit
all-or-nothing.
"""

from repro.apps.webdb.db import Database, QueryView, Table

__all__ = ["Database", "Table", "QueryView"]
