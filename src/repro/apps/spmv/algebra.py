"""Tree-recursive linear algebra over quad-tree matrices (section 5.2).

"The DAG structure lends itself to tree-recursive algorithms and many
important operations in linear algebra can be naturally expressed in
such form. During tree traversal, zero and duplicate sub-matrices can be
detected by PLID comparison. Such optimizations reduce number of memory
accesses and increase the performance of the memory system."

Implemented here:

* :func:`qts_add` — C = A + B with zero-subtree shortcuts and a memo
  keyed by *(root of A-subtree, root of B-subtree)*: a pair of duplicate
  sub-matrices is summed once, however many times it recurs;
* :func:`qts_scale` — C = alpha * A, memoized per subtree root, so a
  block-repetitive matrix is scaled in time proportional to its number
  of *distinct* blocks;
* :func:`qts_transpose` — structural transpose (a symmetric matrix
  transposes to literally the same root);
* :func:`parallel_spmv` — the paper's concurrent kernel: K tasks each
  compute a row partition against a shared snapshot and merge their
  partial result segments into one, conflict-free because partitions are
  disjoint (section 5.2's closing paragraph).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.machine import Machine
from repro.memory.line import Inline
from repro.segments import dag
from repro.segments.dag import Entry, entry_key
from repro.structures.hmatrix import (
    QuadTreeMatrix,
    float_to_word,
    word_to_float,
)


class _OpStats:
    """Work accounting for the PLID-shortcut claims."""

    def __init__(self) -> None:
        self.leaf_ops = 0
        self.memo_hits = 0
        self.zero_shortcuts = 0


def _leaf_words(mem, entry: Entry) -> list:
    w = mem.words_per_line
    if entry == 0:
        return [0] * w
    if isinstance(entry, Inline):
        return list(entry.values) + [0] * (w - len(entry.values))
    return list(mem.read(entry.plid))


def _children(mem, entry: Entry, level: int) -> list:
    from repro.segments.merge import _children_view
    return _children_view(mem, entry, level)


def _add_entries(mem, a: Entry, b: Entry, level: int,
                 memo: Dict[Tuple[bytes, bytes], Entry],
                 stats: _OpStats) -> Entry:
    if a == 0:
        stats.zero_shortcuts += 1
        return dag.retain_entry(mem, b)
    if b == 0:
        stats.zero_shortcuts += 1
        return dag.retain_entry(mem, a)
    key = (entry_key(a), entry_key(b))
    hit = memo.get(key)
    if hit is not None:
        stats.memo_hits += 1
        return dag.retain_entry(mem, hit)
    if level == 0:
        stats.leaf_ops += 1
        wa, wb = _leaf_words(mem, a), _leaf_words(mem, b)
        summed = [
            float_to_word(word_to_float(x) + word_to_float(y))
            if (x or y) else 0
            for x, y in zip(wa, wb)
        ]
        result = dag._leaf_entry(mem, summed)
    else:
        ca, cb = _children(mem, a, level), _children(mem, b, level)
        kids = [_add_entries(mem, ca[j], cb[j], level - 1, memo, stats)
                for j in range(mem.fanout)]
        result = dag._canonical_interior(mem, kids, level)
    # the memo borrows: the recursion stack (and finally the result DAG)
    # keeps the entry alive for the duration of the operation
    memo[key] = result
    return result


def qts_add(machine: Machine, a: QuadTreeMatrix, b: QuadTreeMatrix,
            stats: Optional[_OpStats] = None) -> QuadTreeMatrix:
    """C = A + B by tree recursion with PLID shortcuts."""
    if (a.n_rows, a.n_cols) != (b.n_rows, b.n_cols):
        raise ValueError("shape mismatch")
    if stats is None:
        stats = _OpStats()
    mem = machine.mem
    ea, eb = machine.segmap.entry(a.vsid), machine.segmap.entry(b.vsid)
    height = max(ea.height, eb.height)
    ra = dag.grow_entry(mem, dag.retain_entry(mem, ea.root) and ea.root,
                        ea.height, height)
    rb = dag.grow_entry(mem, dag.retain_entry(mem, eb.root) and eb.root,
                        eb.height, height)
    memo: Dict[Tuple[bytes, bytes], Entry] = {}
    root = _add_entries(mem, ra, rb, height, memo, stats)
    dag.release_entry(mem, ra)
    dag.release_entry(mem, rb)
    vsid = machine.segmap.create(root, height, max(ea.length, eb.length))
    return QuadTreeMatrix(machine, vsid, a.n_rows, a.n_cols, a.size,
                          nnz=max(a.nnz, b.nnz))


def _scale_entry(mem, entry: Entry, alpha: float, level: int,
                 memo: Dict[bytes, Entry], stats: _OpStats) -> Entry:
    if entry == 0:
        stats.zero_shortcuts += 1
        return 0
    key = entry_key(entry)
    hit = memo.get(key)
    if hit is not None:
        stats.memo_hits += 1
        return dag.retain_entry(mem, hit)
    if level == 0:
        stats.leaf_ops += 1
        words = _leaf_words(mem, entry)
        scaled = [float_to_word(alpha * word_to_float(x)) if x else 0
                  for x in words]
        result = dag._leaf_entry(mem, scaled)
    else:
        kids = [_scale_entry(mem, c, alpha, level - 1, memo, stats)
                for c in _children(mem, entry, level)]
        result = dag._canonical_interior(mem, kids, level)
    memo[key] = result
    return result


def qts_scale(machine: Machine, a: QuadTreeMatrix, alpha: float,
              stats: Optional[_OpStats] = None) -> QuadTreeMatrix:
    """C = alpha * A; duplicate blocks are scaled once (memoized)."""
    if stats is None:
        stats = _OpStats()
    mem = machine.mem
    ea = machine.segmap.entry(a.vsid)
    memo: Dict[bytes, Entry] = {}
    root = _scale_entry(mem, ea.root, alpha, ea.height, memo, stats)
    vsid = machine.segmap.create(root, ea.height, ea.length)
    return QuadTreeMatrix(machine, vsid, a.n_rows, a.n_cols, a.size, a.nnz)


def qts_transpose(machine: Machine, a: QuadTreeMatrix) -> QuadTreeMatrix:
    """Aᵀ, rebuilt canonically (a symmetric matrix yields the same root)."""
    entries = [(c, r, v) for r, c, v in a.iter_nonzero()]
    return QuadTreeMatrix.from_coo(machine, a.n_cols, a.n_rows, entries)


def parallel_spmv(machine: Machine, matrix: QuadTreeMatrix,
                  x: "np.ndarray", n_workers: int = 4,
                  seed: int = 0) -> "np.ndarray":
    """Concurrent SpMV: K tasks over one snapshot, merged results.

    Each worker reads the matrix through the shared snapshot (snapshot
    isolation keeps the input stable), computes the rows of its
    partition into transient memory, and commits its partial result into
    a shared result segment with merge-update; partitions are disjoint,
    so merges never conflict (section 5.2's concurrent model).
    """
    from repro.concurrency import Scheduler
    from repro.segments.segment_map import SegmentFlags

    n = matrix.n_rows
    result_vsid = machine.create_segment([0] * max(1, n),
                                         flags=SegmentFlags.MERGE_UPDATE)
    # one shared snapshot of the input matrix
    rows = [[] for _ in range(n_workers)]
    for r, c, v in matrix.iter_nonzero():
        if r < n and c < matrix.n_cols:
            rows[r % n_workers].append((r, c, v))

    def worker(wid):
        partial = {}
        for i, (r, c, v) in enumerate(rows[wid]):
            partial[r] = partial.get(r, 0.0) + v * x[c]
            if i % 16 == 15:
                yield  # interleave with other workers

        def commit(it):
            for r, acc in partial.items():
                prev = it.get(r)
                base = word_to_float(prev) if prev else 0.0
                it.put(float_to_word(base + acc), offset=r)

        machine.atomic_update(result_vsid, commit, merge=True)

    sched = Scheduler(seed=seed)
    for wid in range(n_workers):
        sched.spawn("spmv-%d" % wid, worker(wid))
    sched.run()

    y = np.zeros(n)
    with machine.snapshot(result_vsid) as snap:
        for idx, word in snap.iter_nonzero():
            y[idx] = word_to_float(word)
    machine.drop_segment(result_vsid)
    return y
