"""Conventional CSR / symmetric-CSR SpMV baseline (section 5.2.1).

The paper compares HICAMP against "a conventional CSR SpMV algorithm or
against a symmetric CSR SpMV algorithm, as appropriate". The model lays
the standard arrays out in flat memory — ``row_ptr`` (4-byte indices),
``col_idx`` (4-byte), ``vals`` (8-byte doubles), the dense vectors ``x``
and ``y`` — and replays the kernel's access pattern through the
conventional cache hierarchy: sequential streaming over the matrix
arrays, unpredictable gathers on ``x`` (the paper's stated bottleneck),
and, for the symmetric kernel, scattered updates on ``y`` as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.memory.conventional import Arena, ConventionalMemory
from repro.memory.stats import DramStats
from repro.params import ConventionalConfig
from repro.workloads.matrices import MatrixSpec


@dataclass
class CsrMatrix:
    """CSR (or upper-triangle symmetric CSR) arrays plus their layout."""

    n_rows: int
    n_cols: int
    row_ptr: List[int]
    col_idx: List[int]
    vals: List[float]
    symmetric: bool  # stored as diagonal + upper triangle

    @classmethod
    def from_spec(cls, spec: MatrixSpec, use_symmetric: bool = None) -> "CsrMatrix":
        """Build from a matrix spec, folding symmetric storage if allowed."""
        if use_symmetric is None:
            use_symmetric = spec.symmetric
        rows: List[List[Tuple[int, float]]] = [[] for _ in range(spec.n)]
        for r, c, v in spec.entries:
            if use_symmetric and c < r:
                continue  # lower triangle implied
            rows[r].append((c, v))
        row_ptr = [0]
        col_idx: List[int] = []
        vals: List[float] = []
        for row in rows:
            for c, v in sorted(row):
                col_idx.append(c)
                vals.append(v)
            row_ptr.append(len(col_idx))
        return cls(spec.n, spec.m, row_ptr, col_idx, vals, use_symmetric)

    @property
    def nnz_stored(self) -> int:
        """Stored non-zeros (half the off-diagonal for symmetric)."""
        return len(self.vals)

    def storage_bytes(self) -> int:
        """Array bytes: 4B row_ptr entries + 4B col_idx + 8B values."""
        return 4 * len(self.row_ptr) + 4 * len(self.col_idx) + 8 * len(self.vals)

    def multiply(self, x: "np.ndarray") -> "np.ndarray":
        """Functional SpMV (for correctness cross-checks)."""
        y = np.zeros(self.n_rows)
        for r in range(self.n_rows):
            for k in range(self.row_ptr[r], self.row_ptr[r + 1]):
                c = self.col_idx[k]
                y[r] += self.vals[k] * x[c]
                if self.symmetric and c != r:
                    y[c] += self.vals[k] * x[r]
        return y


def csr_spmv_traffic(csr: CsrMatrix,
                     config: ConventionalConfig = None) -> DramStats:
    """DRAM accesses of one ``y = A @ x`` pass on the conventional machine."""
    mem = ConventionalMemory(config or ConventionalConfig())
    arena = Arena(base=0x10000)
    row_ptr_addr = arena.alloc(4 * len(csr.row_ptr))
    col_idx_addr = arena.alloc(4 * len(csr.col_idx))
    vals_addr = arena.alloc(8 * len(csr.vals))
    x_addr = arena.alloc(8 * csr.n_cols)
    y_addr = arena.alloc(8 * csr.n_rows)

    mem.load(row_ptr_addr, 4)
    for r in range(csr.n_rows):
        mem.load(row_ptr_addr + 4 * (r + 1), 4)
        for k in range(csr.row_ptr[r], csr.row_ptr[r + 1]):
            mem.load(col_idx_addr + 4 * k, 4)
            mem.load(vals_addr + 8 * k, 8)
            c = csr.col_idx[k]
            mem.load(x_addr + 8 * c, 8)  # the unpredictable gather
            if csr.symmetric and c != r:
                mem.load(x_addr + 8 * r, 8)
                mem.load(y_addr + 8 * c, 8)   # scattered accumulate
                mem.store(y_addr + 8 * c, 8)
        mem.store(y_addr + 8 * r, 8)
    mem.drain()
    return mem.dram
