"""HICAMP SpMV kernels with DRAM-traffic measurement (section 5.2).

A matrix is held in the quad-tree (QTS) format — or, when its values
defeat compaction but its pattern does not, the non-zero-dense (NZD)
format — and ``y = A @ x`` is one traversal of the DAG: zero and
duplicate sub-matrices are skipped or served from cache ("detected by
PLID comparison"), the ``x`` vector is a segment read in Z-order blocks
(predictable locality, unlike CSR's gathers), and ``y`` accumulates in
transient memory and commits once at the end.

The caches here are scaled down with the matrices (the paper used
larger-than-L2 matrices on a 4 MB L2; we shrink both, keeping the
matrix-to-cache ratio the comparison actually depends on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.machine import Machine
from repro.params import CacheGeometry, ConventionalConfig, MachineConfig, MemoryConfig
from repro.segments import dag
from repro.structures.hmatrix import NzdMatrix, QuadTreeMatrix, float_to_word
from repro.workloads.matrices import MatrixSpec
from repro.apps.spmv.csr import CsrMatrix, csr_spmv_traffic

#: Scaled cache for the traffic study: the suite's matrices stand to this
#: cache roughly as the paper's UF matrices stood to a 4 MB L2.
SPMV_CACHE_BYTES = 64 * 1024
SPMV_L1_BYTES = 8 * 1024


def spmv_machine(line_bytes: int = 32) -> Machine:
    """A machine with the scaled SpMV cache."""
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 15,
                            data_ways=12, overflow_lines=1 << 21),
        cache=CacheGeometry(size_bytes=SPMV_CACHE_BYTES, ways=16,
                            line_bytes=line_bytes),
    ))


def spmv_conventional_config(line_bytes: int = 32) -> ConventionalConfig:
    """The matching scaled conventional hierarchy."""
    return ConventionalConfig(
        line_bytes=line_bytes,
        l1=CacheGeometry(size_bytes=SPMV_L1_BYTES, ways=4, line_bytes=line_bytes),
        l2=CacheGeometry(size_bytes=SPMV_CACHE_BYTES, ways=16,
                         line_bytes=line_bytes),
    )


@dataclass
class SpmvResult:
    """Traffic and footprint of one matrix under one representation."""

    name: str
    category: str
    fmt: str  # "qts" | "nzd" | "csr" | "csr-sym"
    nnz: int
    footprint_bytes: int
    dram_accesses: int
    y_checksum: float


def hicamp_spmv_traffic(spec: MatrixSpec, line_bytes: int = 32,
                        fmt: str = "qts") -> SpmvResult:
    """Build the matrix on HICAMP and measure one SpMV pass's traffic."""
    machine = spmv_machine(line_bytes)
    if fmt == "qts":
        matrix = QuadTreeMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
    elif fmt == "nzd":
        matrix = NzdMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
    else:
        raise ValueError("unknown HICAMP format %r" % fmt)
    footprint = matrix.footprint_bytes()
    x = np.array([1.0 + (i % 7) * 0.25 for i in range(spec.m)])
    x_vsid = machine.create_segment([float_to_word(v) for v in x])
    # measure only the multiply pass (the paper's off-chip access counts
    # are per-SpMV; the build is amortized across iterations)
    machine.drain()
    before = machine.dram.snapshot()
    y = np.zeros(spec.n)
    x_entry = machine.segmap.entry(x_vsid)
    for row, col, value in matrix.iter_nonzero():
        if row < spec.n and col < spec.m:
            xw = dag.read_word(machine.mem, x_entry.root, x_entry.height, col)
            y[row] += value * x[col]
            del xw  # the access is what matters for traffic
    # commit y once from transient memory
    machine.create_segment([float_to_word(v) for v in y])
    machine.drain()
    delta = machine.dram.delta(before)
    return SpmvResult(spec.name, spec.category, fmt, spec.nnz,
                      footprint, delta.total(), float(y.sum()))


def csr_result(spec: MatrixSpec, line_bytes: int = 32) -> SpmvResult:
    """The conventional side: CSR (symmetric variant when applicable)."""
    csr = CsrMatrix.from_spec(spec)
    dram = csr_spmv_traffic(csr, spmv_conventional_config(line_bytes))
    x = np.array([1.0 + (i % 7) * 0.25 for i in range(spec.m)])
    y = csr.multiply(x)
    return SpmvResult(spec.name, spec.category,
                      "csr-sym" if csr.symmetric else "csr",
                      spec.nnz, spec.csr_bytes(), dram.total(), float(y.sum()))


def best_hicamp_footprint(spec: MatrixSpec,
                          line_bytes: int = 32) -> Tuple[str, int]:
    """The best-known HICAMP format for a matrix (QTS or NZD), by bytes.

    This is the paper's Table 2 methodology: "We compare the best-known
    HICAMP format (QTS or NZD) against CSR, or symmetric CSR, as
    appropriate."
    """
    machine_q = spmv_machine(line_bytes)
    qts = QuadTreeMatrix.from_coo(machine_q, spec.n, spec.m, spec.entries)
    qts_bytes = qts.footprint_bytes()
    machine_n = spmv_machine(line_bytes)
    nzd = NzdMatrix.from_coo(machine_n, spec.n, spec.m, spec.entries)
    nzd_bytes = nzd.footprint_bytes()
    if nzd_bytes < qts_bytes:
        return "nzd", nzd_bytes
    return "qts", qts_bytes


def spmv_comparison(spec: MatrixSpec, line_bytes: int = 32):
    """(HICAMP result, CSR result) for one matrix — Figure 7's data point.

    The HICAMP format is whichever of QTS/NZD is smaller for this matrix,
    mirroring the paper's per-matrix format choice.
    """
    fmt, _ = best_hicamp_footprint(spec, line_bytes)
    hicamp = hicamp_spmv_traffic(spec, line_bytes, fmt)
    conventional = csr_result(spec, line_bytes)
    # cross-check numerics between representations
    if abs(hicamp.y_checksum - conventional.y_checksum) > 1e-6 * max(
            1.0, abs(conventional.y_checksum)):
        raise AssertionError(
            "SpMV mismatch on %s: %r vs %r" % (
                spec.name, hicamp.y_checksum, conventional.y_checksum))
    return hicamp, conventional
