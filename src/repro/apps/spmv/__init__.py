"""Sparse matrix-vector multiplication study (section 5.2).

* :mod:`repro.apps.spmv.csr` — the conventional baseline: CSR and
  symmetric-CSR layouts in flat memory, with the SpMV kernel's address
  trace fed to the cache-hierarchy simulator;
* :mod:`repro.apps.spmv.kernels` — the HICAMP side: quad-tree (QTS) and
  non-zero-dense (NZD) formats with DRAM-traffic measurement, plus the
  format auto-chooser and footprint comparison used by Table 2 /
  Figures 7-8.
"""

from repro.apps.spmv.csr import CsrMatrix, csr_spmv_traffic
from repro.apps.spmv.kernels import (
    best_hicamp_footprint,
    hicamp_spmv_traffic,
    spmv_comparison,
)

__all__ = [
    "CsrMatrix",
    "csr_spmv_traffic",
    "best_hicamp_footprint",
    "hicamp_spmv_traffic",
    "spmv_comparison",
]
