"""The paper's evaluated applications: memcached (section 5.1), sparse
matrix kernels (section 5.2), and VM-hosting deduplication (section 5.3).
"""
