"""Memcached data compaction measurement (Table 1).

The paper loaded each dataset into the HICAMP memory-system simulator and
reported *compaction* = conventional bytes / HICAMP bytes, per line size.
Here each item (key and value strings) is stored as a content-unique
segment in a fresh machine; the HICAMP requirement is the unique-line
footprint, DAG overhead included, and the conventional requirement is the
raw item bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.machine import Machine
from repro.params import CacheGeometry, MachineConfig, MemoryConfig
from repro.structures.anon import AnonSegment
from repro.workloads.text import TextCorpus


@dataclass
class CompactionResult:
    """One Table 1 cell: a dataset at one line size."""

    dataset: str
    line_bytes: int
    n_items: int
    conventional_bytes: int
    hicamp_bytes: int

    @property
    def compaction(self) -> float:
        """Conventional requirement over HICAMP requirement (>1 is a win)."""
        if self.hicamp_bytes == 0:
            return float("inf")
        return self.conventional_bytes / self.hicamp_bytes


def machine_for_line(line_bytes: int) -> Machine:
    """A machine sized for footprint studies at one line size."""
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 15,
                            data_ways=12, overflow_lines=1 << 21),
        cache=CacheGeometry(size_bytes=1 << 20, ways=16, line_bytes=line_bytes),
    ))


def measure_compaction(corpus: TextCorpus, line_bytes: int) -> CompactionResult:
    """Load a corpus into a fresh machine and compare footprints."""
    machine = machine_for_line(line_bytes)
    handles: List[AnonSegment] = []
    conventional = 0
    for key, value in corpus.items.items():
        conventional += len(key) + len(value)
        handles.append(AnonSegment.from_bytes(machine.mem, key))
        handles.append(AnonSegment.from_bytes(machine.mem, value))
    return CompactionResult(
        dataset=corpus.spec.name,
        line_bytes=line_bytes,
        n_items=len(corpus.items),
        conventional_bytes=conventional,
        hicamp_bytes=machine.footprint_bytes(),
    )
