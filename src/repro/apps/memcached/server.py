"""Memcached on HICAMP (section 4.4).

The key-value map is an :class:`~repro.structures.hmap.HMap`: a sparse
segment indexed by the content-unique identity of the key string, each
slot holding the root of the value segment. Consequences the paper calls
out, all of which hold here:

* a ``get`` loads an iterator/snapshot with a read-only reference and
  needs no interprocess communication, locking, or synchronization;
* deduplication ensures any given key has exactly one index, and equal
  values are stored once across the whole cache;
* an update commits by a hardware-atomic root swap, so a client halted
  mid-operation cannot leave the map inconsistent;
* merge-update absorbs concurrent non-conflicting updates (different
  keys) without application retry.

The command set covers the paper's list: get, set, delete, plus add,
replace, increment/decrement and CAS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.machine import Machine
from repro.structures.hmap import HMap


@dataclass
class ServerStats:
    """Operation counters (memcached's own ``stats`` command)."""

    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    deletes: int = 0
    delete_hits: int = 0
    cas_ops: int = 0
    cas_failures: int = 0
    flushes: int = 0


class HicampMemcached:
    """A memcached server running directly on a HICAMP machine."""

    #: Whether the router may coalesce a run of sets into one
    #: :meth:`set_many` bulk commit. Subclasses that rewrite payloads
    #: per-store (TTL headers) must opt out.
    BULK_SAFE = True

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.kvp = HMap.create(machine)
        self.stats = ServerStats()

    # ------------------------------------------------------------------
    # basic commands

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch a value — snapshot read, no synchronization (§4.4)."""
        self.stats.gets += 1
        value = self.kvp.get(key)
        if value is not None:
            self.stats.get_hits += 1
        return value

    def set(self, key: bytes, value: bytes) -> bool:
        """Store a key-value pair unconditionally."""
        self.stats.sets += 1
        self.kvp.put(key, value)
        return True

    def set_many(self, items) -> None:
        """Store a batch of pairs in one atomic commit (bulk ingest).

        The whole batch is one tree rebuild and one root swap
        (:meth:`HMap.put_many`), the coalesced alternative to the
        merge-absorbed per-key commits of the queue worker.
        """
        self.stats.sets += len(items)
        self.kvp.put_many(items)

    def delete(self, key: bytes) -> bool:
        """Remove a key; False when absent."""
        self.stats.deletes += 1
        hit = self.kvp.delete(key)
        if hit:
            self.stats.delete_hits += 1
        return hit

    # ------------------------------------------------------------------
    # conditional commands

    def add(self, key: bytes, value: bytes) -> bool:
        """Store only if the key is absent (atomic via merge rules)."""
        if self.kvp.contains(key):
            return False
        self.stats.sets += 1
        self.kvp.put(key, value)
        return True

    def replace(self, key: bytes, value: bytes) -> bool:
        """Store only if the key is present."""
        if not self.kvp.contains(key):
            return False
        self.stats.sets += 1
        self.kvp.put(key, value)
        return True

    def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """Increment a decimal-ASCII counter value (memcached semantics)."""
        current = self.kvp.get(key)
        if current is None:
            return None
        new = max(0, int(current or b"0") + delta)
        self.kvp.put(key, b"%d" % new)
        return new

    def decr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """Decrement, floored at zero as memcached specifies."""
        return self.incr(key, -delta)

    def gets(self, key: bytes) -> Optional[tuple]:
        """Value plus CAS token.

        The token is the content-unique identity of the value — on
        HICAMP, "has the value changed" is literally a root compare.
        """
        value = self.get(key)
        if value is None:
            return None
        return value, self._token(key)

    def cas(self, key: bytes, value: bytes, token: bytes) -> bool:
        """Store only if the value is unchanged since :meth:`gets`."""
        self.stats.cas_ops += 1
        if self._token(key) != token:
            self.stats.cas_failures += 1
            return False
        self.kvp.put(key, value)
        return True

    def _token(self, key: bytes) -> Optional[bytes]:
        current = self.kvp.get(key)
        if current is None:
            return None
        # content identity: dedup makes equal values share one root, so
        # hashing the bytes is equivalent to comparing root PLIDs
        import hashlib
        return hashlib.blake2b(current, digest_size=8).digest()

    # ------------------------------------------------------------------
    # administrative commands

    def flush_all(self) -> None:
        """Drop every item at once.

        On HICAMP this is one segment release: the map root goes away and
        hardware reference counting reclaims exactly the unshared lines.
        """
        self.stats.flushes += 1
        old = self.kvp
        self.kvp = HMap.create(self.machine)
        old.drop()

    def version(self) -> bytes:
        """Server identification for the ``version`` command."""
        return b"repro-hicamp/1.0"

    def extra_stats(self) -> dict:
        """Server-specific counters appended to the ``stats`` response."""
        return {
            "flushes": self.stats.flushes,
            "footprint_bytes": self.footprint_bytes(),
        }

    # ------------------------------------------------------------------

    def item_count(self) -> int:
        """Number of stored key-value pairs."""
        return len(self.kvp)

    def footprint_bytes(self) -> int:
        """DRAM bytes consumed by the whole cache (unique lines)."""
        return self.machine.footprint_bytes()
