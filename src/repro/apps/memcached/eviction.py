"""Cache management for the HICAMP memcached: TTL expiry and LRU
eviction under a memory quota.

Real memcached "pre-allocates a user configured memory quota and uses a
custom slab memory allocator. Reference counting is used to keep track
of the allocated memory... Additionally, a time-out mechanism is
necessary" (section 4.4). On HICAMP most of that machinery disappears —
reclamation *is* the hardware reference counting — but a cache still
needs expiry and an eviction policy, so this layer adds them:

* every stored value carries an 8-byte expiry header inside its segment
  (all cache state lives in HICAMP memory);
* a logical clock advances with operations (tests can also advance it);
* when the machine's unique-line footprint exceeds the quota, the least
  recently used items are deleted — and because deletion just drops
  references, hardware reclaims exactly the unshared lines.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.apps.memcached.server import HicampMemcached
from repro.core.machine import Machine

_HEADER = struct.Struct(">Q")
_NEVER = 0


@dataclass
class EvictionStats:
    """Expiry/eviction accounting."""

    expired: int = 0
    evicted: int = 0
    eviction_passes: int = 0


class ManagedMemcached(HicampMemcached):
    """Memcached with TTL expiry and a byte quota with LRU eviction."""

    #: Every store rewrites the payload (expiry header), so the router
    #: must not coalesce runs through the header-less bulk path.
    BULK_SAFE = False

    def __init__(self, machine: Machine,
                 quota_bytes: Optional[int] = None) -> None:
        super().__init__(machine)
        self.quota_bytes = quota_bytes
        self.clock = 0
        self.eviction = EvictionStats()
        # process-local LRU metadata (real memcached equally keeps its
        # LRU chain in server-process state)
        self._lru: "OrderedDict[bytes, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # clock

    def tick(self, amount: int = 1) -> int:
        """Advance the logical clock (each request also advances it)."""
        self.clock += amount
        return self.clock

    # ------------------------------------------------------------------
    # storage commands with expiry headers

    def set(self, key: bytes, value: bytes, exptime: int = 0) -> bool:
        """Store with an optional time-to-live (0 = never expires)."""
        self.tick()
        deadline = self.clock + exptime if exptime else _NEVER
        super().set(key, _HEADER.pack(deadline) + value)
        self._touch(key)
        self._enforce_quota()
        return True

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch, honouring expiry (lazily deletes a dead item)."""
        self.tick()
        raw = super().get(key)
        if raw is None:
            return None
        (deadline,) = _HEADER.unpack_from(raw)
        if deadline != _NEVER and self.clock > deadline:
            super().delete(key)
            self._lru.pop(key, None)
            self.eviction.expired += 1
            return None
        self._touch(key)
        return raw[_HEADER.size:]

    def delete(self, key: bytes) -> bool:
        """Remove an item."""
        self.tick()
        self._lru.pop(key, None)
        return super().delete(key)

    def add(self, key: bytes, value: bytes, exptime: int = 0) -> bool:
        """Store only if absent (expired items count as absent)."""
        if self.get(key) is not None:
            return False
        return self.set(key, value, exptime)

    def replace(self, key: bytes, value: bytes, exptime: int = 0) -> bool:
        """Store only if present and alive."""
        if self.get(key) is None:
            return False
        return self.set(key, value, exptime)

    def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """Increment a decimal counter value (expiry preserved as-is)."""
        current = self.get(key)
        if current is None:
            return None
        new = max(0, int(current or b"0") + delta)
        self.set(key, b"%d" % new)
        return new

    def cas(self, key: bytes, value: bytes, token: bytes,
            exptime: int = 0) -> bool:
        """Conditional store, with the expiry header the plain path
        omits — without it a later :meth:`get` would unpack the first
        eight payload bytes as a deadline."""
        self.tick()
        self.stats.cas_ops += 1
        if self._token(key) != token:
            self.stats.cas_failures += 1
            return False
        deadline = self.clock + exptime if exptime else _NEVER
        self.kvp.put(key, _HEADER.pack(deadline) + value)
        self._touch(key)
        self._enforce_quota()
        return True

    def set_many(self, items) -> None:
        """Bulk store (no TTL): each value gets a never-expires header.

        Correct for direct callers; the router still never routes its
        batched runs here (``BULK_SAFE`` is False) because the wire
        frames' per-item exptimes would be lost.
        """
        self.tick(len(items))
        header = _HEADER.pack(_NEVER)
        super().set_many([(key, header + value) for key, value in items])
        for key, _ in items:
            self._touch(key)
        self._enforce_quota()

    def _token(self, key: bytes) -> Optional[bytes]:
        """CAS token over the *logical* value, header excluded.

        Content identity must mean value identity (the checker's spec and
        the paper's root-compare argument); hashing the header would make
        equal values with different deadlines look different.
        """
        raw = self.kvp.get(key)
        if raw is None:
            return None
        import hashlib
        return hashlib.blake2b(raw[_HEADER.size:], digest_size=8).digest()

    def flush_all(self) -> None:
        """Drop every item and forget the LRU chain."""
        self.tick()
        self._lru.clear()
        super().flush_all()

    # ------------------------------------------------------------------
    # LRU / quota

    def _touch(self, key: bytes) -> None:
        self._lru.pop(key, None)
        self._lru[key] = None

    def _enforce_quota(self) -> None:
        if self.quota_bytes is None:
            return
        if self.machine.footprint_bytes() <= self.quota_bytes:
            return
        self.eviction.eviction_passes += 1
        while (self.machine.footprint_bytes() > self.quota_bytes
               and self._lru):
            victim, _ = self._lru.popitem(last=False)  # least recent
            if super().delete(victim):
                self.eviction.evicted += 1

    def live_items(self) -> int:
        """Items currently tracked by the LRU (alive, unexpired-ish)."""
        return len(self._lru)

    def extra_stats(self) -> dict:
        """Eviction accounting on top of the base server's counters."""
        stats = super().extra_stats()
        stats.update({
            "expired": self.eviction.expired,
            "evicted": self.eviction.evicted,
            "eviction_passes": self.eviction.eviction_passes,
            "live_items": self.live_items(),
        })
        return stats
