"""Workload runner for the memcached traffic study (Figure 6).

Runs the same preload + request trace against the HICAMP server and the
conventional model, measuring the DRAM accesses of the request phase
(the paper's traces were likewise captured while serving requests over a
pre-loaded cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.memcached.conventional import ConventionalMemcached
from repro.apps.memcached.server import HicampMemcached
from repro.core.machine import Machine
from repro.memory.stats import DramStats
from repro.params import (
    CacheGeometry,
    ConventionalConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.workloads.traces import MemcachedWorkload

#: Cache scaled with the scaled-down corpus (the paper used a 4 MB L2
#: against ~3 GB datasets; we keep the dataset-to-cache ratio >> 1).
MEMCACHED_CACHE_BYTES = 32 * 1024
MEMCACHED_L1_BYTES = 8 * 1024


@dataclass
class TrafficResult:
    """DRAM accesses of the request phase on one architecture."""

    arch: str
    line_bytes: int
    dram: DramStats
    get_hit_rate: float


def hicamp_machine_for_traffic(line_bytes: int) -> Machine:
    """A HICAMP machine with the scaled cache.

    Uses 64-bit PLIDs: the paper's own map-update arithmetic for this
    experiment (section 5.1.1, "log2(N) total for 16-byte lines") assumes
    two references per 16-byte line, i.e. 8-byte PLIDs, and footnote 6
    prices the DAG overhead accordingly. Footprint studies (Table 1)
    default to the 32-bit PLIDs of footnote 5 instead.
    """
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 15,
                            data_ways=12, overflow_lines=1 << 21,
                            plid_bytes=8),
        cache=CacheGeometry(size_bytes=MEMCACHED_CACHE_BYTES, ways=16,
                            line_bytes=line_bytes),
    ))


def conventional_config_for_traffic(line_bytes: int) -> ConventionalConfig:
    """The matching scaled conventional hierarchy."""
    return ConventionalConfig(
        line_bytes=line_bytes,
        l1=CacheGeometry(size_bytes=MEMCACHED_L1_BYTES, ways=4,
                         line_bytes=line_bytes),
        l2=CacheGeometry(size_bytes=MEMCACHED_CACHE_BYTES, ways=16,
                         line_bytes=line_bytes),
    )


def run_hicamp(workload: MemcachedWorkload, line_bytes: int) -> TrafficResult:
    """Preload, then measure request-phase DRAM traffic on HICAMP."""
    machine = hicamp_machine_for_traffic(line_bytes)
    server = HicampMemcached(machine)
    for key, value in workload.preload.items():
        server.set(key, value)
    machine.drain()
    before = machine.dram.snapshot()
    for req in workload.requests:
        if req.op == "get":
            server.get(req.key)
        elif req.op == "set":
            server.set(req.key, req.value)
        else:
            server.delete(req.key)
    machine.drain()
    delta = machine.dram.delta(before)
    hits = server.stats.get_hits / max(1, server.stats.gets)
    return TrafficResult("hicamp", line_bytes, delta, hits)


def run_conventional(workload: MemcachedWorkload,
                     line_bytes: int) -> TrafficResult:
    """The same trace against the conventional memcached model."""
    server = ConventionalMemcached(conventional_config_for_traffic(line_bytes))
    for key, value in workload.preload.items():
        server.set(key, value)
    server.mem.drain()
    before = server.mem.dram.snapshot()
    gets = hits = 0
    for req in workload.requests:
        if req.op == "get":
            gets += 1
            if server.get(req.key) is not None:
                hits += 1
        elif req.op == "set":
            server.set(req.key, req.value)
        else:
            server.delete(req.key)
    server.mem.drain()
    delta = server.mem.dram.delta(before)
    return TrafficResult("conventional", line_bytes, delta,
                         hits / max(1, gets))


def figure6_row(workload: MemcachedWorkload,
                line_bytes: int) -> Dict[str, TrafficResult]:
    """Both architectures at one line size — one pair of Figure 6 bars."""
    return {
        "conventional": run_conventional(workload, line_bytes),
        "hicamp": run_hicamp(workload, line_bytes),
    }
