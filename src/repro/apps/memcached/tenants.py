"""Multi-tenant namespaces: one HICAMP segment (VSID) per tenant.

A production cache is shared by many applications; real deployments
carve the keyspace with prefixes (``tenant:key``) and then lose all
per-tenant accounting, because every item lands in one hash table. On
HICAMP a namespace is simply *its own segment*: the tenant prefix
selects a per-tenant :class:`~repro.structures.hmap.HMap`, so

* per-tenant item counts and op counters are exact and free — each
  tenant's map root is a distinct VSID with its own entry count;
* dropping a tenant is one segment release (hardware reclaims exactly
  its unshared lines), not a keyspace scan;
* deduplication still spans tenants — the maps share one machine, so a
  value stored by two tenants occupies one set of lines;
* a tenant's state can be fingerprinted, replicated or snapshotted
  independently via its VSID.

Keys are stored whole (prefix included), so any client talking the
plain memcached protocol gets namespace isolation just by prefixing.
Keys with no separator live in the default tenant (``_``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.memcached.server import HicampMemcached
from repro.core.machine import Machine
from repro.structures.hmap import HMap

#: Namespace of keys that carry no separator.
DEFAULT_TENANT = b"_"


@dataclass
class TenantStats:
    """Per-namespace operation counters."""

    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    deletes: int = 0


class TenantMemcached(HicampMemcached):
    """Memcached whose keyspace is split into per-tenant segments."""

    BULK_SAFE = True

    def __init__(self, machine: Machine, separator: bytes = b":") -> None:
        super().__init__(machine)
        self.separator = separator
        #: tenant -> its map; the base class's ``kvp`` serves as the
        #: default tenant, keeping the single-map surface (vsid
        #: accounting, flush) intact for the router.
        self.tenants: Dict[bytes, HMap] = {DEFAULT_TENANT: self.kvp}
        self.tenant_stats: Dict[bytes, TenantStats] = {
            DEFAULT_TENANT: TenantStats()}

    # ------------------------------------------------------------------
    # routing

    def tenant_of(self, key: bytes) -> bytes:
        """The namespace a key belongs to (prefix before the separator)."""
        at = key.find(self.separator)
        return key[:at] if at > 0 else DEFAULT_TENANT

    def _map(self, tenant: bytes) -> HMap:
        kvp = self.tenants.get(tenant)
        if kvp is None:
            kvp = HMap.create(self.machine)
            self.tenants[tenant] = kvp
            self.tenant_stats[tenant] = TenantStats()
        return kvp

    def _route(self, key: bytes) -> Tuple[HMap, TenantStats]:
        tenant = self.tenant_of(key)
        return self._map(tenant), self.tenant_stats[tenant]

    def vsids(self) -> Dict[bytes, int]:
        """Each tenant's segment VSID (stable handles for stats,
        fingerprints, replication)."""
        return {tenant: kvp.vsid
                for tenant, kvp in sorted(self.tenants.items())}

    # ------------------------------------------------------------------
    # commands (same semantics as the base class, routed per tenant)

    def get(self, key: bytes) -> Optional[bytes]:
        kvp, tstats = self._route(key)
        self.stats.gets += 1
        tstats.gets += 1
        value = kvp.get(key)
        if value is not None:
            self.stats.get_hits += 1
            tstats.get_hits += 1
        return value

    def set(self, key: bytes, value: bytes) -> bool:
        kvp, tstats = self._route(key)
        self.stats.sets += 1
        tstats.sets += 1
        kvp.put(key, value)
        return True

    def set_many(self, items) -> None:
        """Bulk ingest: one :meth:`HMap.put_many` commit per tenant."""
        groups: Dict[bytes, List[Tuple[bytes, bytes]]] = {}
        for key, value in items:
            groups.setdefault(self.tenant_of(key), []).append((key, value))
        for tenant in sorted(groups):
            group = groups[tenant]
            kvp = self._map(tenant)
            self.stats.sets += len(group)
            self.tenant_stats[tenant].sets += len(group)
            kvp.put_many(group)

    def delete(self, key: bytes) -> bool:
        kvp, tstats = self._route(key)
        self.stats.deletes += 1
        tstats.deletes += 1
        hit = kvp.delete(key)
        if hit:
            self.stats.delete_hits += 1
        return hit

    def add(self, key: bytes, value: bytes) -> bool:
        kvp, _ = self._route(key)
        if kvp.contains(key):
            return False
        return self.set(key, value)

    def replace(self, key: bytes, value: bytes) -> bool:
        kvp, _ = self._route(key)
        if not kvp.contains(key):
            return False
        return self.set(key, value)

    def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        kvp, _ = self._route(key)
        current = kvp.get(key)
        if current is None:
            return None
        new = max(0, int(current or b"0") + delta)
        kvp.put(key, b"%d" % new)
        return new

    def cas(self, key: bytes, value: bytes, token: bytes) -> bool:
        kvp, _ = self._route(key)
        self.stats.cas_ops += 1
        if self._token(key) != token:
            self.stats.cas_failures += 1
            return False
        kvp.put(key, value)
        return True

    def _token(self, key: bytes) -> Optional[bytes]:
        kvp, _ = self._route(key)
        current = kvp.get(key)
        if current is None:
            return None
        import hashlib
        return hashlib.blake2b(current, digest_size=8).digest()

    def flush_all(self) -> None:
        """Drop every namespace; the default tenant is recreated."""
        self.stats.flushes += 1
        for kvp in self.tenants.values():
            kvp.drop()
        self.kvp = HMap.create(self.machine)
        self.tenants = {DEFAULT_TENANT: self.kvp}
        self.tenant_stats = {DEFAULT_TENANT: TenantStats()}

    # ------------------------------------------------------------------
    # accounting

    def item_count(self) -> int:
        return sum(len(kvp) for kvp in self.tenants.values())

    def items_by_tenant(self) -> Dict[bytes, int]:
        """Current item count per namespace (each map's count word)."""
        return {tenant: len(kvp)
                for tenant, kvp in sorted(self.tenants.items())}

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats["tenants"] = len(self.tenants)
        for tenant, count in self.items_by_tenant().items():
            stats["tenant_%s_items" % tenant.decode("ascii", "replace")] \
                = count
        return stats
