"""Memcached on HICAMP (section 4.4) and on the conventional baseline.

:class:`HicampMemcached` implements the key-value cache exactly as the
paper sketches: the KVP map is a sparse array indexed by the
content-unique identity of the key string, reads run against private
snapshots with no locks or IPC, and updates commit by CAS with
merge-update. :class:`ConventionalMemcached` models the classic
implementation — hash table, chained items, and socket-buffer copies —
as an address trace fed to the DineroIV-like cache hierarchy, which is
what the paper's Figure 6 baseline measured through VMware tracing.
"""

from repro.apps.memcached.server import HicampMemcached
from repro.apps.memcached.conventional import ConventionalMemcached
from repro.apps.memcached.compaction import measure_compaction
from repro.apps.memcached.tenants import (
    DEFAULT_TENANT,
    TenantMemcached,
    TenantStats,
)

__all__ = ["HicampMemcached", "ConventionalMemcached",
           "measure_compaction",
           "DEFAULT_TENANT", "TenantMemcached", "TenantStats"]
