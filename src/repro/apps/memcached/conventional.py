"""The conventional memcached baseline (Figure 6's left bars).

The paper measured this side by tracing a real memcached (inside VMware
Workstation) and replaying 300M+ loads/stores through DineroIV. We model
the same implementation structure as an address trace generated from
first principles and fed to the same cache hierarchy:

* a chained **hash table** over item records (memcached's design);
* **item records** holding header, key bytes and value bytes, laid out by
  a slab-like bump allocator;
* the **IPC path** the paper's analysis centres on: every get copies the
  value through a socket buffer to the client's receive buffer, and
  every set arrives through a socket buffer before being copied into the
  item — traffic HICAMP eliminates entirely by passing references.

The model charges only data accesses (no instruction fetch), which is
also what the HICAMP side counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.memory.conventional import Arena, ConventionalMemory
from repro.params import ConventionalConfig

_HEADER_BYTES = 48  # next ptr, hash, key len, value len, flags, refcount...
_SOCKET_BUF = 8 * 1024


@dataclass
class _Item:
    addr: int
    key: bytes
    value_addr: int
    value_len: int
    next_addr: int  # address of the chain link we were reached through


class ConventionalMemcached:
    """Trace-generating model of a classic memcached process."""

    def __init__(self, config: ConventionalConfig = None,
                 hash_buckets: int = 4096) -> None:
        self.mem = ConventionalMemory(config or ConventionalConfig())
        self.arena = Arena(base=0x100000)
        self.hash_buckets = hash_buckets
        self.table_addr = self.arena.alloc(8 * hash_buckets)
        # socket and client receive buffers, reused round-robin
        self.socket_buf = self.arena.alloc(_SOCKET_BUF)
        self.client_buf = self.arena.alloc(_SOCKET_BUF)
        self._sock_off = 0
        self._chains: Dict[int, list] = {}
        self._items: Dict[bytes, _Item] = {}

    # ------------------------------------------------------------------

    def _bucket(self, key: bytes) -> int:
        return zlib.crc32(key) % self.hash_buckets

    def _sock(self, size: int) -> int:
        """Rotating socket-buffer offset (buffers get reused)."""
        if self._sock_off + size > _SOCKET_BUF:
            self._sock_off = 0
        addr = self.socket_buf + self._sock_off
        self._sock_off += size
        return addr

    def _walk_chain(self, key: bytes):
        """Hash lookup: read the bucket head, then each chain item's
        header and key until a match."""
        bucket = self._bucket(key)
        self.mem.load(self.table_addr + 8 * bucket, 8)
        for item in self._chains.get(bucket, []):
            self.mem.load(item.addr, _HEADER_BYTES)
            # key compare: both the probe key (in the socket buffer) and
            # the stored key are touched
            self.mem.load(item.addr + _HEADER_BYTES, len(item.key))
            if item.key == key:
                return item
        return None

    # ------------------------------------------------------------------
    # commands (each models the full request path incl. IPC copies)

    def get(self, key: bytes) -> Optional[bytes]:
        """Lookup + copy the value out through the socket path."""
        # the request (key) arrives in the socket buffer
        req = self._sock(len(key))
        self.mem.store(req, len(key))
        self.mem.load(req, len(key))
        item = self._walk_chain(key)
        if item is None:
            return None
        # server reads the value and writes the response into the socket
        # buffer; the client then reads it into its own buffer
        out = self._sock(item.value_len)
        self.mem.load(item.value_addr, item.value_len)
        self.mem.store(out, item.value_len)
        self.mem.load(out, item.value_len)
        self.mem.store(self.client_buf, item.value_len)
        return b"\x00" * item.value_len  # placeholder payload

    def set(self, key: bytes, value: bytes) -> None:
        """Receive through the socket buffer, allocate, copy, link."""
        req = self._sock(len(key) + len(value))
        self.mem.store(req, len(key) + len(value))  # client -> kernel
        self.mem.load(req, len(key) + len(value))   # server reads request
        existing = self._walk_chain(key)
        if existing is not None and existing.value_len >= len(value):
            # update in place
            self.mem.store(existing.value_addr, len(value))
            existing.value_len = len(value)
            return
        addr = self.arena.alloc(_HEADER_BYTES + len(key) + len(value))
        self.mem.store(addr, _HEADER_BYTES)                    # header init
        self.mem.store(addr + _HEADER_BYTES, len(key))         # key copy
        value_addr = addr + _HEADER_BYTES + len(key)
        self.mem.store(value_addr, len(value))                 # value copy
        bucket = self._bucket(key)
        self.mem.load(self.table_addr + 8 * bucket, 8)
        self.mem.store(self.table_addr + 8 * bucket, 8)        # head link
        item = _Item(addr, key, value_addr, len(value), 0)
        chain = self._chains.setdefault(bucket, [])
        if existing is not None:
            chain.remove(existing)
        chain.insert(0, item)
        self._items[key] = item

    def delete(self, key: bytes) -> bool:
        """Unlink from the chain (pointer write)."""
        req = self._sock(len(key))
        self.mem.store(req, len(key))
        self.mem.load(req, len(key))
        item = self._walk_chain(key)
        if item is None:
            return False
        bucket = self._bucket(key)
        self._chains[bucket].remove(item)
        self._items.pop(key, None)
        self.mem.store(self.table_addr + 8 * bucket, 8)
        return True

    # ------------------------------------------------------------------

    def item_count(self) -> int:
        """Number of stored items."""
        return len(self._items)

    def footprint_bytes(self) -> int:
        """Arena bytes consumed (headers + keys + values + table)."""
        return self.arena.used
