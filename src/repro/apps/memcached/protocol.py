"""The memcached ASCII protocol (the paper's section 4.4 command set).

Implements the classic text protocol for the commands the paper lists —
get/gets, set/add/replace, delete, incr/decr, cas — over any server
object with the :class:`~repro.apps.memcached.server.HicampMemcached`
method surface. On HICAMP the point is that this layer is all a client
*needs*: the data itself is shared by reference, so "parsing" is the
only per-request software cost left.

Example::

    handler = ProtocolHandler(HicampMemcached(Machine()))
    handler.handle(b"set greeting 0 0 5\\r\\nhello\\r\\n")
    handler.handle(b"get greeting\\r\\n")
    # -> b"VALUE greeting 0 5\\r\\nhello\\r\\nEND\\r\\n"
"""

from __future__ import annotations

import binascii
from typing import List, Optional, Tuple

CRLF = b"\r\n"

#: Storage commands carry a data block after the request line.
STORAGE_COMMANDS = (b"set", b"add", b"replace", b"cas")

#: Hard cap on a declared data-block size (real memcached: 1 MB default).
MAX_VALUE_BYTES = 1 << 20


class ProtocolError(Exception):
    """Malformed request line or payload.

    ``resync_bytes``, when non-zero, tells a streaming caller how many
    bytes of the buffer the malformed request occupies — request line
    *and* its data block — so the decoder resynchronizes at the next
    pipelined request instead of misreading the payload as a command.
    """

    resync_bytes: int = 0


class IncompleteRequestError(ProtocolError):
    """The buffer ends before the request does — short, not malformed.

    A streaming caller (the asyncio serving layer) waits for more bytes;
    a complete-request caller treats it like any other protocol error.
    """


def parse_frame(data: bytes) -> Tuple[bytes, List[bytes], Optional[bytes], int]:
    """Parse one request from the head of ``data``.

    Returns ``(command, arguments, payload, consumed)`` where
    ``consumed`` is the number of bytes the request occupied — the
    streaming decoder uses it to pop pipelined requests one by one.
    Raises :class:`IncompleteRequestError` when ``data`` is a valid
    prefix of a request (more bytes could complete it) and plain
    :class:`ProtocolError` when it can never become valid.
    """
    if CRLF not in data:
        raise IncompleteRequestError("unterminated request line")
    line, rest = data.split(CRLF, 1)
    consumed = len(line) + len(CRLF)
    parts = line.split()
    if not parts:
        raise ProtocolError("empty request")
    command, args = parts[0], parts[1:]
    if command in STORAGE_COMMANDS:
        if len(args) < 4:
            raise ProtocolError("storage command needs key flags exptime bytes")
        try:
            nbytes = int(args[3])
        except ValueError:
            raise ProtocolError("bad byte count %r" % args[3])
        if nbytes < 0:
            raise ProtocolError("negative byte count")
        if nbytes > MAX_VALUE_BYTES:
            raise ProtocolError("object too large for cache")
        if len(rest) < nbytes + len(CRLF):
            # data block shorter than the declared byte count: do NOT
            # truncate — either more bytes are coming (streaming) or the
            # request is rejected outright (complete-request callers)
            raise IncompleteRequestError(
                "data block shorter than declared %d bytes" % nbytes)
        payload = rest[:nbytes]
        if rest[nbytes:nbytes + len(CRLF)] != CRLF:
            exc = ProtocolError("payload length mismatch")
            # the data block's real terminator is the first CRLF at or
            # after the declared length; everything up to it belongs to
            # this (malformed) request, not the next one
            end = rest.find(CRLF, nbytes)
            if end != -1:
                exc.resync_bytes = consumed + end + len(CRLF)
            raise exc
        return command, args, payload, consumed + nbytes + len(CRLF)
    return command, args, None, consumed


def parse_request(data: bytes) -> Tuple[bytes, List[bytes], Optional[bytes]]:
    """Split a raw request into (command, arguments, payload).

    Storage commands carry a data block whose length is announced in the
    request line; retrieval commands are a single line. ``data`` must
    hold one complete request (the streaming case is
    :class:`repro.net.framing.FrameDecoder`).
    """
    command, args, payload, _ = parse_frame(data)
    return command, args, payload


class ProtocolHandler:
    """Stateless request → response translation over a server object."""

    def __init__(self, server) -> None:
        self.server = server

    # ------------------------------------------------------------------

    def handle(self, data: bytes) -> bytes:
        """Process one complete request; returns the wire response."""
        try:
            command, args, payload = parse_request(data)
        except ProtocolError as exc:
            return b"CLIENT_ERROR %s\r\n" % str(exc).encode()
        try:
            name = command.decode("ascii")
        except UnicodeDecodeError:
            return b"ERROR\r\n"
        handler = getattr(self, "_cmd_%s" % name, None)
        if handler is None:
            return b"ERROR\r\n"
        try:
            return handler(args, payload)
        except ProtocolError as exc:
            return b"CLIENT_ERROR %s\r\n" % str(exc).encode()

    # ------------------------------------------------------------------
    # retrieval

    def _cmd_get(self, args, payload) -> bytes:
        out = []
        for key in args:
            value = self.server.get(key)
            if value is not None:
                out.append(b"VALUE %s 0 %d\r\n%s\r\n" % (key, len(value), value))
        out.append(b"END\r\n")
        return b"".join(out)

    def _cmd_gets(self, args, payload) -> bytes:
        out = []
        for key in args:
            got = self.server.gets(key)
            if got is not None:
                value, token = got
                out.append(b"VALUE %s 0 %d %d\r\n%s\r\n" % (
                    key, len(value), binascii.crc32(token), value))
        out.append(b"END\r\n")
        return b"".join(out)

    # ------------------------------------------------------------------
    # storage

    def _exptime(self, args) -> int:
        try:
            return max(0, int(args[2]))
        except (ValueError, IndexError):
            raise ProtocolError("bad exptime %r" % args[2:3])

    def _store(self, method, args, payload) -> bool:
        exptime = self._exptime(args)
        try:
            return method(args[0], payload, exptime=exptime)
        except TypeError:
            # servers without TTL support (the plain HicampMemcached)
            return method(args[0], payload)

    def _cmd_set(self, args, payload) -> bytes:
        self._store(self.server.set, args, payload)
        return b"STORED\r\n"

    def _cmd_add(self, args, payload) -> bytes:
        return b"STORED\r\n" if self._store(self.server.add, args, payload) \
            else b"NOT_STORED\r\n"

    def _cmd_replace(self, args, payload) -> bytes:
        return b"STORED\r\n" \
            if self._store(self.server.replace, args, payload) \
            else b"NOT_STORED\r\n"

    def _cmd_cas(self, args, payload) -> bytes:
        if len(args) < 5:
            raise ProtocolError("cas needs a token")
        got = self.server.gets(args[0])
        if got is None:
            return b"NOT_FOUND\r\n"
        _, token = got
        try:
            presented = int(args[4])
        except ValueError:
            raise ProtocolError("bad cas token")
        if presented != binascii.crc32(token):
            return b"EXISTS\r\n"
        return b"STORED\r\n" if self.server.cas(args[0], payload, token) \
            else b"EXISTS\r\n"

    # ------------------------------------------------------------------
    # deletion / arithmetic

    def _cmd_delete(self, args, payload) -> bytes:
        if not args:
            raise ProtocolError("delete needs a key")
        return b"DELETED\r\n" if self.server.delete(args[0]) \
            else b"NOT_FOUND\r\n"

    def _cmd_incr(self, args, payload) -> bytes:
        return self._arith(args, +1)

    def _cmd_decr(self, args, payload) -> bytes:
        return self._arith(args, -1)

    def _arith(self, args, sign) -> bytes:
        if len(args) < 2:
            raise ProtocolError("incr/decr need key and delta")
        try:
            delta = int(args[1])
        except ValueError:
            raise ProtocolError("bad delta %r" % args[1])
        result = self.server.incr(args[0], sign * delta)
        if result is None:
            return b"NOT_FOUND\r\n"
        return b"%d\r\n" % result

    def _cmd_stats(self, args, payload) -> bytes:
        stats = self.server.stats
        lines = [b"STAT %s %d\r\n" % (name.encode(), getattr(stats, name))
                 for name in ("gets", "get_hits", "sets", "deletes",
                              "cas_ops", "cas_failures")]
        lines.append(b"STAT curr_items %d\r\n" % self.server.item_count())
        extra = getattr(self.server, "extra_stats", None)
        if extra is not None:
            for name, value in sorted(extra().items()):
                lines.append(b"STAT %s %s\r\n"
                             % (name.encode(), str(value).encode()))
        lines.append(b"END\r\n")
        return b"".join(lines)

    # ------------------------------------------------------------------
    # administrative

    def _cmd_version(self, args, payload) -> bytes:
        version = getattr(self.server, "version", None)
        name = version() if version is not None else b"repro-hicamp"
        return b"VERSION %s\r\n" % name

    def _cmd_flush_all(self, args, payload) -> bytes:
        flush = getattr(self.server, "flush_all", None)
        if flush is None:
            return b"ERROR\r\n"
        flush()
        return b"OK\r\n"
