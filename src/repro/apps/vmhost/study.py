"""VM-hosting deduplication measurements (section 5.3).

The paper took VMmark VM memory snapshots, loaded them "into HICAMP's
memory system simulator to compute the total number of memory lines
required", and compared against an ideal page-sharing scheme. The same
pipeline runs here over the synthetic images of
:mod:`repro.workloads.vm_images`:

* **allocated** — the configured memory of all VMs;
* **page sharing (ideal)** — unique 4 KB pages x 4 KB, the instantaneous
  dedup upper bound for a hypervisor;
* **HICAMP** — each VM image becomes one segment; the footprint is the
  machine's unique-line count (DAG overhead included), measured at the
  paper's 64-byte line size by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.machine import Machine
from repro.memory.line import pack_words
from repro.params import CacheGeometry, MachineConfig, MemoryConfig
from repro.workloads.vm_images import PAGE, VmImage


@dataclass
class VmhostMeasurement:
    """One Figure 9/10 data point."""

    label: str
    n_vms: int
    allocated_bytes: int
    page_sharing_bytes: int
    hicamp_bytes: int

    @property
    def hicamp_compaction(self) -> float:
        """Allocated over HICAMP bytes (the paper's 1.86x-10.87x range)."""
        return self.allocated_bytes / max(1, self.hicamp_bytes)

    @property
    def page_sharing_compaction(self) -> float:
        """Allocated over ideal-page-sharing bytes (1.44x-5.21x range)."""
        return self.allocated_bytes / max(1, self.page_sharing_bytes)


def vmhost_machine(line_bytes: int = 64) -> Machine:
    """A machine sized for whole-image footprint loading."""
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 15,
                            data_ways=12, overflow_lines=1 << 22),
        cache=CacheGeometry(size_bytes=1 << 20, ways=16, line_bytes=line_bytes),
    ))


def ideal_page_sharing_bytes(images: Iterable[VmImage]) -> int:
    """Unique non-zero pages across all images, at page granularity."""
    unique = set()
    for image in images:
        for page in image.pages:
            if page.count(0) != PAGE:  # zero pages are free in both schemes
                unique.add(page)
    return len(unique) * PAGE


def load_images_into_hicamp(images: Iterable[VmImage],
                            line_bytes: int = 64) -> Machine:
    """Load every image as a segment; returns the machine for inspection."""
    machine = vmhost_machine(line_bytes)
    for image in images:
        words = pack_words(b"".join(image.pages))
        machine.create_segment(words)
    return machine


def measure_images(label: str, images: List[VmImage],
                   line_bytes: int = 64) -> VmhostMeasurement:
    """Allocated / page-sharing / HICAMP bytes for a set of VM images."""
    machine = load_images_into_hicamp(images, line_bytes)
    return VmhostMeasurement(
        label=label,
        n_vms=len(images),
        allocated_bytes=sum(img.allocated_bytes for img in images),
        page_sharing_bytes=ideal_page_sharing_bytes(images),
        hicamp_bytes=machine.footprint_bytes(),
    )
