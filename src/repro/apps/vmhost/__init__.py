"""Virtual-machine hosting study (section 5.3, Figures 9-10).

Loads VM memory snapshots into the HICAMP memory system and compares the
unique-line footprint against (a) the allocated size and (b) an *ideal*
page-sharing scheme that detects every duplicate 4 KB page instantly —
the paper's upper bound on hypervisor-level sharing.
"""

from repro.apps.vmhost.study import (
    VmhostMeasurement,
    ideal_page_sharing_bytes,
    load_images_into_hicamp,
    measure_images,
)

__all__ = [
    "VmhostMeasurement",
    "ideal_page_sharing_bytes",
    "load_images_into_hicamp",
    "measure_images",
]
