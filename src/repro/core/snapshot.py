"""Segment snapshots.

Passing a segment reference hands the receiver a stable snapshot of the
content at essentially no cost (section 2.2): the snapshot pins the root
it observed with one reference, and copy-on-write means no later commit
can disturb it. A snapshot is therefore the unit of read-only sharing and
of long-running read transactions (the paper's bank-audit example).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry


class Snapshot:
    """An immutable view of one segment version.

    Create via :meth:`repro.core.machine.Machine.snapshot`; use as a
    context manager (or call :meth:`release`) so the pinned version can be
    reclaimed.
    """

    def __init__(self, mem: MemorySystem, root: Entry, height: int,
                 length: int) -> None:
        self._mem = mem
        self._root = root  # owned reference
        self._height = height
        self._length = length
        self._released = False

    # ------------------------------------------------------------------

    @property
    def root(self) -> Entry:
        """The pinned root entry (identity of this content version)."""
        return self._root

    @property
    def height(self) -> int:
        """DAG height of the pinned version."""
        return self._height

    @property
    def length(self) -> int:
        """Logical length in words."""
        return self._length

    def key(self) -> bytes:
        """Canonical content key — equal iff snapshot contents are equal
        (the single-instruction segment compare of section 2.2)."""
        return dag.entry_key(self._root) + bytes((self._height,))

    # ------------------------------------------------------------------

    def read(self, offset: int):
        """Word at ``offset`` (zero beyond the written content)."""
        if offset >= self._length:
            return 0
        return dag.read_word(self._mem, self._root, self._height, offset)

    def read_range(self, start: int, count: int) -> List:
        """``count`` consecutive words starting at ``start``."""
        count = max(0, min(count, self._length - start))
        if count == 0:
            return []
        return dag.gather_words(self._mem, self._root, self._height, start, count)

    def words(self) -> List:
        """The entire content as a word list."""
        return self.read_range(0, self._length)

    def iter_nonzero(self, start: int = 0) -> Iterator[Tuple[int, object]]:
        """Iterate ``(offset, word)`` over non-null elements."""
        return dag.iter_nonzero(self._mem, self._root, self._height,
                                start=start, stop=self._length)

    # ------------------------------------------------------------------

    def release(self) -> None:
        """Drop the snapshot's reference (idempotent)."""
        if not self._released:
            dag.release_entry(self._mem, self._root)
            self._released = True

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
