"""Core public API: the HICAMP machine facade, snapshots, non-blocking
atomic-update / merge-update (mCAS) transactions, the protected-reference
process model, and machine checkpointing.
"""

from repro.core.machine import Machine, Processor
from repro.core.persistence import load_machine, restore_machine, save_machine
from repro.core.process import Process, ProtectionError
from repro.core.snapshot import Snapshot
from repro.core.transactions import MultiSegmentCommit, atomic_update, mcas

__all__ = [
    "Machine",
    "Processor",
    "Snapshot",
    "MultiSegmentCommit",
    "atomic_update",
    "mcas",
    "Process",
    "ProtectionError",
    "save_machine",
    "load_machine",
    "restore_machine",
]
