"""The HICAMP machine facade — the library's main entry point.

Wires together the deduplicating memory system, the virtual segment map
and a pool of iterator registers, and offers segment-level convenience
operations. Application code typically goes through the typed structures
in :mod:`repro.structures`, which are built on this facade.

Example::

    from repro import Machine

    m = Machine()
    a = m.create_segment([1, 2, 3])
    b = m.create_segment([1, 2, 3])
    assert m.segments_equal(a, b)      # single root compare
    m.write_word(a, 1, 99)             # copy-on-write update
    assert not m.segments_equal(a, b)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.snapshot import Snapshot
from repro.core.transactions import atomic_update
from repro.errors import IteratorStateError
from repro.memory.stats import DramStats
from repro.memory.system import MemorySystem
from repro.memory.transient import TransientRegion
from repro.params import MachineConfig
from repro.segments import dag
from repro.segments.iterator import IteratorRegister
from repro.segments.segment_map import SegmentFlags, SegmentMap


class Processor:
    """One processor: a private iterator-register file and transient
    region over the machine's shared memory system (sections 3.3 and
    footnotes 2/7 — transient lines are per-core and never coherent)."""

    def __init__(self, machine: "Machine", pid: int) -> None:
        self.machine = machine
        self.pid = pid
        self.transient = TransientRegion(
            line_bytes=machine.config.memory.line_bytes)
        self._registers: List[IteratorRegister] = [
            IteratorRegister(machine.mem, machine.segmap,
                             transient_region=self.transient)
            for _ in range(machine.config.iterator_registers)
        ]
        self._free_registers = list(range(len(self._registers)))

    def iterator(self, vsid: Optional[int] = None,
                 offset: int = 0) -> IteratorRegister:
        """Claim a free iterator register (optionally loading it).

        Release with :meth:`release_iterator`. A processor has a fixed
        register file (``config.iterator_registers``); exhausting it
        raises :class:`IteratorStateError`.
        """
        if not self._free_registers:
            raise IteratorStateError(
                "all iterator registers of processor %d are in use" % self.pid)
        it = self._registers[self._free_registers.pop()]
        if vsid is not None:
            it.load(vsid, offset)
        return it

    def release_iterator(self, it: IteratorRegister) -> None:
        """Return a register to the free pool (drops its snapshot)."""
        it.reset()
        idx = self._registers.index(it)
        self._free_registers.append(idx)


class Machine:
    """A simulated HICAMP processor-memory complex."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.mem = MemorySystem(self.config)
        self.segmap = SegmentMap(self.mem)
        #: the machine's processors; single-processor convenience methods
        #: below operate on processor 0
        self.processors: List[Processor] = [
            Processor(self, pid) for pid in range(self.config.n_processors)
        ]

    @property
    def transient(self) -> TransientRegion:
        """Processor 0's transient region (single-processor shorthand)."""
        return self.processors[0].transient

    # ------------------------------------------------------------------
    # iterator registers (processor-0 shorthand)

    def iterator(self, vsid: Optional[int] = None, offset: int = 0) -> IteratorRegister:
        """Claim a free iterator register on processor 0."""
        return self.processors[0].iterator(vsid, offset)

    def release_iterator(self, it: IteratorRegister) -> None:
        """Return a processor-0 register to the free pool."""
        self.processors[0].release_iterator(it)

    # ------------------------------------------------------------------
    # segment lifecycle

    def create_segment(self, words: Sequence = (),
                       flags: SegmentFlags = SegmentFlags.NONE) -> int:
        """Create a segment holding ``words``; returns its VSID."""
        if len(words):
            root, height = dag.build_segment(self.mem, words)
        else:
            root, height = 0, 0
        return self.segmap.create(root, height, len(words), flags)

    def drop_segment(self, vsid: int) -> None:
        """Delete a segment reference; unshared content is reclaimed."""
        self.segmap.drop(vsid)

    def share_read_only(self, vsid: int) -> int:
        """Read-only VSID for the same content (protected sharing, §2.3)."""
        return self.segmap.share_read_only(vsid)

    def segment_length(self, vsid: int) -> int:
        """Logical length of a segment in words."""
        return self.segmap.entry(vsid).length

    def segments_equal(self, vsid_a: int, vsid_b: int) -> bool:
        """Content equality by root compare — O(1) regardless of size."""
        a, b = self.segmap.entry(vsid_a), self.segmap.entry(vsid_b)
        if a.length != b.length:
            return False
        return (a.height == b.height
                and dag.entry_key(a.root) == dag.entry_key(b.root))

    def snapshot(self, vsid: int) -> Snapshot:
        """Pin the current version of a segment for stable reading."""
        entry = self.segmap.entry(vsid)
        dag.retain_entry(self.mem, entry.root)
        return Snapshot(self.mem, entry.root, entry.height, entry.length)

    # ------------------------------------------------------------------
    # word-level convenience (single-writer; contended updates should go
    # through atomic_update / mcas)

    def read_word(self, vsid: int, offset: int):
        """Read one word of a segment."""
        entry = self.segmap.entry(vsid)
        if offset >= entry.length:
            return 0
        return dag.read_word(self.mem, entry.root, entry.height, offset)

    def read_segment(self, vsid: int) -> List:
        """The whole content of a segment as a word list."""
        with self.snapshot(vsid) as snap:
            return snap.words()

    def write_word(self, vsid: int, offset: int, value) -> None:
        """Copy-on-write update of one word (extends the segment if
        written at or past the end)."""
        self.write_words(vsid, {offset: value})

    def write_words(self, vsid: int, updates: dict) -> None:
        """Copy-on-write update of several words in one rebuild pass."""
        if not updates:
            return
        entry = self.segmap.entry(vsid)
        length = max(entry.length, max(updates) + 1)
        root, height = entry.root, entry.height
        dag.retain_entry(self.mem, root)
        needed = dag.height_for(self.mem, max(1, length))
        if needed > height:
            root = dag.grow_entry(self.mem, root, height, needed)
            height = needed
        root = dag.write_words_bulk(self.mem, root, height, updates)
        self.segmap.set_root(vsid, root, height, length)

    def append_words(self, vsid: int, words: Sequence) -> None:
        """Append words — segments grow without reallocation (§4.1)."""
        start = self.segmap.entry(vsid).length
        self.write_words(vsid, {start + i: w for i, w in enumerate(words)})

    def atomic_update(self, vsid: int, update: Callable[[IteratorRegister], None],
                      merge: bool = False, max_retries: int = 64) -> None:
        """Snapshot → update → CAS loop on one segment (section 2.2)."""
        it = self.iterator(vsid)
        try:
            atomic_update(it, update, merge=merge, max_retries=max_retries)
        finally:
            self.release_iterator(it)

    # ------------------------------------------------------------------
    # replication surface (line export/install for leader/follower)

    def has_line(self, plid: int) -> bool:
        """True when ``plid`` names a line allocated in this machine."""
        return self.mem.has_line(plid)

    def export_line(self, plid: int):
        """A line's content, for shipping to a replica (uncharged read)."""
        return self.mem.export_line(plid)

    def install_line(self, line) -> "tuple[int, bool]":
        """Install a line received from a replica; ``(plid, created)``.

        Content lookup makes the install idempotent; the returned
        reference is counted and owned by the caller. Children must be
        installed first (the replication wire order guarantees this).
        """
        return self.mem.install_line(line)

    def segment_fingerprint(self, vsid: int) -> bytes:
        """Machine-independent content digest of a mapped segment.

        Equal across machines iff the segments hold equal content —
        the cross-machine analogue of :meth:`segments_equal`.
        """
        return dag.segment_fingerprint(self, vsid)

    # ------------------------------------------------------------------
    # accounting

    @property
    def dram(self) -> DramStats:
        """Off-chip DRAM access counters."""
        return self.mem.dram

    def footprint_bytes(self) -> int:
        """Unique-line DRAM footprint in bytes."""
        return self.mem.footprint_bytes()

    def footprint_lines(self) -> int:
        """Unique-line DRAM footprint in lines."""
        return self.mem.footprint_lines()

    def drain(self) -> None:
        """Flush caches so deferred traffic reaches the DRAM counters."""
        self.mem.drain()
