"""Non-blocking atomic update and merge-update transactions.

The architecture's update protocol (section 2.2):

1. save the root PLID of the original segment;
2. modify the segment, producing a new root PLID;
3. CAS the new root over the original in the segment map, retrying on
   interference.

:func:`atomic_update` packages that loop over an iterator register;
:func:`mcas` is the paper's mCAS pseudocode (section 3.4), resolving CAS
failures by merge-update until a true conflict appears.
:class:`MultiSegmentCommit` models the atomic multi-segment commit
obtained when the segment map itself is a HICAMP segment (section 2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import CasFailedError, MergeConflictError
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry
from repro.segments.iterator import IteratorRegister
from repro.segments.merge import MergeStats, merge_roots
from repro.segments.segment_map import SegmentMap


def mcas(mem: MemorySystem, segmap: SegmentMap, vsid: int,
         old: Tuple[Entry, int], new: Tuple[Entry, int], new_length: int,
         stats: Optional[MergeStats] = None) -> bool:
    """The paper's ``mCAS(old, curAddr, new)`` on a segment-map entry.

    ``old`` is the base version the update was computed from (borrowed);
    ``new`` is the updated version (caller-owned reference, consumed
    whether or not the operation succeeds). Returns False only on a true
    merge conflict.
    """
    old_root, old_height = old
    new_root, new_height = new
    while True:
        if segmap.cas_root(vsid, old_root, old_height,
                           new_root, new_height, new_length):
            return True
        entry = segmap.entry(vsid)
        cur = (entry.root, entry.height)
        try:
            merged_root, merged_height = merge_roots(
                mem, (old_root, old_height), (new_root, new_height), cur,
                stats=stats,
            )
        except MergeConflictError:
            dag.release_entry(mem, new_root)
            return False
        dag.release_entry(mem, new_root)
        new_root, new_height = merged_root, merged_height
        old_root, old_height = cur
        new_length = max(new_length, entry.length)


def atomic_update(it: IteratorRegister, update: Callable[[IteratorRegister], None],
                  merge: bool = False, max_retries: int = 64,
                  merge_stats: Optional[MergeStats] = None) -> None:
    """Run ``update(it)`` against a snapshot and commit atomically.

    The register must already be loaded. On CAS failure the snapshot is
    reloaded and ``update`` re-run — unless ``merge`` is set (or the
    segment carries the MERGE_UPDATE flag), in which case merge-update
    folds the changes in without re-running. Raises
    :class:`CasFailedError` after ``max_retries`` lost races and
    :class:`MergeConflictError` on a true merge conflict.
    """
    from repro.segments.segment_map import SegmentFlags

    mem, segmap, vsid = it.mem, it.segmap, it.vsid
    use_merge = merge or bool(segmap.entry(vsid).flags & SegmentFlags.MERGE_UPDATE)
    for _ in range(max_retries):
        update(it)
        if it.try_commit():
            return
        if use_merge:
            base = (it.snapshot_root, it.height)
            new_root, new_height = it.build_updated_root()
            length = it.length
            if mcas(mem, segmap, vsid, base, (new_root, new_height), length,
                    stats=merge_stats):
                it.load(vsid, it.offset)
                return
            raise MergeConflictError(
                "merge-update failed with a true conflict on VSID %d" % vsid
            )
        it.load(vsid, it.offset)  # fresh snapshot, then re-run update
    raise CasFailedError("atomic update on VSID %d exceeded %d retries"
                         % (vsid, max_retries))


class MultiSegmentCommit:
    """Atomic update of several segments at once.

    When the segment map is itself a HICAMP segment, committing a revised
    map publishes every revised segment in one CAS (section 2.3). This
    class models that: it snapshots the version of each enrolled segment,
    buffers new roots, and applies all of them only if no enrolled entry
    changed in between.
    """

    def __init__(self, mem: MemorySystem, segmap: SegmentMap) -> None:
        self._mem = mem
        self._segmap = segmap
        self._base_versions: Dict[int, int] = {}
        self._staged: Dict[int, Tuple[Entry, int, int]] = {}

    def enroll(self, vsid: int) -> None:
        """Include a segment in the transaction's conflict footprint."""
        if vsid not in self._base_versions:
            self._base_versions[vsid] = self._segmap.entry(vsid).version

    def stage(self, vsid: int, new_root: Entry, new_height: int,
              new_length: int) -> None:
        """Buffer a new version for ``vsid`` (takes over the caller's
        reference on ``new_root``); not visible until :meth:`commit`."""
        self.enroll(vsid)
        if vsid in self._staged:
            dag.release_entry(self._mem, self._staged[vsid][0])
        self._staged[vsid] = (new_root, new_height, new_length)

    def commit(self) -> bool:
        """Apply all staged roots iff no enrolled segment changed.

        Returns False (and discards the staged versions) on conflict —
        the revised segments were never visible to other threads.
        """
        for vsid, version in self._base_versions.items():
            if self._segmap.entry(vsid).version != version:
                self.abort()
                return False
        for vsid, (root, height, length) in self._staged.items():
            self._segmap.set_root(vsid, root, height, length)
        self._staged.clear()
        self._base_versions.clear()
        return True

    def abort(self) -> None:
        """Discard staged versions, releasing their references."""
        for root, _, _ in self._staged.values():
            dag.release_entry(self._mem, root)
        self._staged.clear()
        self._base_versions.clear()
