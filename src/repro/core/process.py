"""Protected references: the HICAMP process model (sections 2.1, 2.3).

"There is no need for conventional address translation in HICAMP because
inter-process isolation is achieved by the protected references. In
particular, a process can only access data that it creates or to which
it is passed a reference. Moreover, a reference (VSID) can be passed as
read-only... achieving the same protection as separate address spaces
but without the IPC communication overheads."

:class:`Process` models that: a capability set of VSIDs. All segment
access goes through the process, which checks possession (PLIDs/VSIDs
are hardware-tagged and unforgeable, so possession *is* the access
right). Passing a reference to another process grants it — read-write,
read-only, or as a stable snapshot.
"""

from __future__ import annotations

from typing import Callable, List, Set

from repro.core.machine import Machine
from repro.core.snapshot import Snapshot
from repro.errors import HicampError
from repro.segments.iterator import IteratorRegister
from repro.segments.segment_map import SegmentFlags


class ProtectionError(HicampError):
    """A process touched a VSID it was never granted (it could not have
    held the tagged reference — hardware would fault the untagged word)."""


class Process:
    """One protection domain: a name plus the references it holds."""

    def __init__(self, machine: Machine, name: str) -> None:
        self.machine = machine
        self.name = name
        self._grants: Set[int] = set()

    # ------------------------------------------------------------------
    # capability management

    def holds(self, vsid: int) -> bool:
        """True when this process holds a reference to ``vsid``."""
        return vsid in self._grants

    def _check(self, vsid: int) -> int:
        if vsid not in self._grants:
            raise ProtectionError(
                "process %r holds no reference to VSID %d" % (self.name, vsid))
        return vsid

    def create_segment(self, words=(),
                       flags: SegmentFlags = SegmentFlags.NONE) -> int:
        """Create a segment; the creator holds the only reference."""
        vsid = self.machine.create_segment(words, flags=flags)
        self._grants.add(vsid)
        return vsid

    def grant(self, other: "Process", vsid: int) -> int:
        """Pass a read-write reference to another process.

        No copy, no message, no marshalling — the receiver simply gains
        the capability (this is the IPC the architecture eliminates).
        """
        self._check(vsid)
        other._grants.add(vsid)
        return vsid

    def grant_read_only(self, other: "Process", vsid: int) -> int:
        """Pass a read-only reference (a new VSID the receiver cannot
        commit through)."""
        self._check(vsid)
        ro = self.machine.share_read_only(vsid)
        other._grants.add(ro)
        return ro

    def revoke(self, vsid: int) -> None:
        """Drop this process's own reference."""
        self._check(vsid)
        self._grants.discard(vsid)

    # ------------------------------------------------------------------
    # checked access paths

    def read_word(self, vsid: int, offset: int):
        """Checked word read."""
        return self.machine.read_word(self._check(vsid), offset)

    def read_segment(self, vsid: int) -> List:
        """Checked full read."""
        return self.machine.read_segment(self._check(vsid))

    def write_word(self, vsid: int, offset: int, value) -> None:
        """Checked copy-on-write update (read-only refs are rejected by
        the segment map itself)."""
        self.machine.write_word(self._check(vsid), offset, value)

    def snapshot(self, vsid: int) -> Snapshot:
        """Checked snapshot."""
        return self.machine.snapshot(self._check(vsid))

    def iterator(self, vsid: int, offset: int = 0) -> IteratorRegister:
        """Checked iterator-register load."""
        return self.machine.iterator(self._check(vsid), offset)

    def atomic_update(self, vsid: int,
                      update: Callable[[IteratorRegister], None],
                      merge: bool = False) -> None:
        """Checked non-blocking atomic update."""
        self.machine.atomic_update(self._check(vsid), update, merge=merge)
