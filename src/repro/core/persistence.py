"""Checkpoint and restore of a machine's memory image.

A pure-Python simulator is slow, so long experiments want to build a
state once (preload a cache, load VM images, assemble matrices) and
reuse it. :func:`save_machine` serializes the deduplicated store — every
line with its tagged words and exact PLID — plus the segment map, to a
JSON document; :func:`load_machine` reconstructs a machine whose PLIDs,
VSIDs, refcounts and dedup behaviour are identical to the original
(content lookups after a restore find the pre-existing lines).

Caches, DRAM counters and iterator registers are *not* part of the image
(they are transient microarchitectural state); a restored machine starts
cold.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.machine import Machine
from repro.errors import PersistenceError
from repro.memory import hashing
from repro.memory.line import Inline, Line, PlidRef, encode_line
from repro.params import CacheGeometry, MachineConfig, MemoryConfig
from repro.segments.segment_map import MapEntry, SegmentFlags

FORMAT_VERSION = 1


def _word_to_json(word) -> Any:
    if isinstance(word, int):
        return word
    if isinstance(word, PlidRef):
        return {"t": "P", "p": word.plid, "q": list(word.path)}
    if isinstance(word, Inline):
        return {"t": "I", "w": word.width, "v": list(word.values),
                "s": word.span}
    raise TypeError("unserializable word %r" % (word,))


def _word_from_json(obj) -> Any:
    if isinstance(obj, int):
        return obj
    if obj["t"] == "P":
        return PlidRef(obj["p"], tuple(obj["q"]))
    if obj["t"] == "I":
        return Inline(width=obj["w"], values=tuple(obj["v"]), span=obj["s"])
    raise ValueError("bad word record %r" % (obj,))


def _entry_to_json(entry) -> Any:
    return 0 if entry == 0 else _word_to_json(entry)


def _entry_from_json(obj) -> Any:
    return 0 if obj == 0 else _word_from_json(obj)


def machine_image(machine: Machine) -> Dict[str, Any]:
    """The machine's durable state as a JSON-safe document.

    Quiesces epoch-deferred reclamation first (a no-op under
    ``reclaim_kind="immediate"``): deferred-dead lines must not be
    serialized — restoring them would leak count-zero lines into a
    machine with no reclaimer queue entry pointing at them.
    """
    store = machine.mem.store
    store.reclaim_quiesce()
    mc = machine.config
    lines = {str(plid): [_word_to_json(w) for w in store.peek(plid)]
             for plid in store.live_plids()}
    refcounts = {str(plid): store.refcount(plid)
                 for plid in store.live_plids()}
    segmap = {
        str(vsid): {
            "root": _entry_to_json(entry.root),
            "height": entry.height,
            "length": entry.length,
            "flags": int(entry.flags),
            "version": entry.version,
        }
        for vsid, entry in machine.segmap._entries.items()
    }
    return {
        "format": FORMAT_VERSION,
        "config": {
            "line_bytes": mc.memory.line_bytes,
            "num_buckets": mc.memory.num_buckets,
            "data_ways": mc.memory.data_ways,
            "overflow_lines": mc.memory.overflow_lines,
            "plid_bytes": mc.memory.plid_bytes,
            "index_kind": mc.memory.index_kind,
            "index_buckets": mc.memory.index_buckets,
            "index_slots": mc.memory.index_slots,
            "reclaim_kind": mc.memory.reclaim_kind,
            "cache_bytes": mc.cache.size_bytes,
            "cache_ways": mc.cache.ways,
            "path_compaction": mc.path_compaction,
            "data_compaction": mc.data_compaction,
            "iterator_registers": mc.iterator_registers,
            "n_processors": mc.n_processors,
        },
        "next_overflow": store._next_overflow,
        "free_overflow": list(store.slots.free_overflow),
        "overflow_bucket": {str(p): b
                            for p, b in store._overflow_bucket.items()},
        "lines": lines,
        "refcounts": refcounts,
        "segmap": segmap,
        "next_vsid": machine.segmap._next_vsid,
    }


def save_machine(machine: Machine, path: str) -> None:
    """Write a machine image to ``path``."""
    with open(path, "w") as f:
        json.dump(machine_image(machine), f)


def restore_machine(image: Dict[str, Any]) -> Machine:
    """Reconstruct a machine from an image document.

    Raises :class:`PersistenceError` for images written by an unknown
    ``FORMAT_VERSION`` or missing required fields — a versioned refusal
    beats silently misreading a future layout.
    """
    if not isinstance(image, dict) or "format" not in image:
        raise PersistenceError("not a machine image (no format field)")
    if image["format"] != FORMAT_VERSION:
        raise PersistenceError(
            "unsupported image format %r (this build reads version %d)"
            % (image["format"], FORMAT_VERSION))
    try:
        cfg = image["config"]
        machine = Machine(MachineConfig(
            memory=MemoryConfig(line_bytes=cfg["line_bytes"],
                                num_buckets=cfg["num_buckets"],
                                data_ways=cfg["data_ways"],
                                overflow_lines=cfg["overflow_lines"],
                                plid_bytes=cfg["plid_bytes"],
                                # older images predate the index switch
                                index_kind=cfg.get("index_kind", "legacy"),
                                index_buckets=cfg.get("index_buckets", 1 << 10),
                                index_slots=cfg.get("index_slots", 4),
                                # and the reclamation switch
                                reclaim_kind=cfg.get("reclaim_kind",
                                                     "immediate")),
            cache=CacheGeometry(size_bytes=cfg["cache_bytes"],
                                ways=cfg["cache_ways"],
                                line_bytes=cfg["line_bytes"]),
            path_compaction=cfg["path_compaction"],
            data_compaction=cfg["data_compaction"],
            iterator_registers=cfg["iterator_registers"],
            n_processors=cfg["n_processors"],
        ))
        store = machine.mem.store
        num_buckets = store.config.num_buckets

        # restore lines at their exact PLIDs, rebuilding the bucket indexes
        for plid_str, words in image["lines"].items():
            plid = int(plid_str)
            line: Line = tuple(_word_from_json(w) for w in words)
            enc = encode_line(line)
            bucket_idx = (int(image["overflow_bucket"].get(plid_str,
                                                           plid % num_buckets))
                          if plid >= store._overflow_base
                          else plid % num_buckets)
            bucket = store._buckets.get(bucket_idx)
            if bucket is None:
                from repro.memory.dedup_store import _Bucket
                bucket = _Bucket(signatures=[0] * (store.config.data_ways + 1))
                store._buckets[bucket_idx] = bucket
            if plid >= store._overflow_base:
                bucket.overflow.append(plid)
                store._overflow_bucket[plid] = bucket_idx
            else:
                way = plid // num_buckets
                bucket.signatures[way] = hashing.signature(enc)
            bucket.by_encoding[enc] = plid
            store._lines[plid] = line
            store._refcounts[plid] = image["refcounts"][plid_str]
        store._next_overflow = image["next_overflow"]
        store.slots.free_overflow[:] = [int(p) for p
                                        in image["free_overflow"]]
        # recapture canonical encodings (and rebuild the cuckoo table
        # when the image was saved under index_kind="cuckoo")
        store.reindex()

        # restore the segment map
        for vsid_str, rec in image["segmap"].items():
            machine.segmap._entries[int(vsid_str)] = MapEntry(
                root=_entry_from_json(rec["root"]),
                height=rec["height"],
                length=rec["length"],
                flags=SegmentFlags(rec["flags"]),
                version=rec["version"],
            )
        machine.segmap._next_vsid = image["next_vsid"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError("malformed machine image: %s" % exc) from exc
    return machine


def load_machine(path: str) -> Machine:
    """Read a machine image from ``path``."""
    with open(path) as f:
        return restore_machine(json.load(f))


# ----------------------------------------------------------------------
# file images with metadata (operator checkpoints, follower warm start)

def save_machine_file(machine: Machine, path: str,
                      extra: Optional[Dict[str, Any]] = None) -> None:
    """Write a machine image to ``path``, gzipped when it ends in ``.gz``.

    ``extra`` rides along in the document under ``"extra"`` — the
    replication CLI stores its stream table (shard → VSID) there so a
    follower warm-started from a checkpoint knows which segments the
    image's VSIDs correspond to.
    """
    image = machine_image(machine)
    if extra is not None:
        image["extra"] = extra
    data = json.dumps(image).encode()
    if path.endswith(".gz"):
        with gzip.open(path, "wb") as f:
            f.write(data)
    else:
        with open(path, "wb") as f:
            f.write(data)


def load_machine_file(path: str) -> Tuple[Machine, Dict[str, Any]]:
    """Read an image written by :func:`save_machine_file`.

    Returns ``(machine, extra)``; ``extra`` is ``{}`` when the image
    carries no metadata. Transparently handles gzip by the ``.gz``
    suffix and raises :class:`PersistenceError` on undecodable files.
    """
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rb") as f:
                data = f.read()
        else:
            with open(path, "rb") as f:
                data = f.read()
        image = json.loads(data)
    except FileNotFoundError:
        raise
    except (OSError, ValueError) as exc:
        raise PersistenceError("cannot read machine image %s: %s"
                               % (path, exc)) from exc
    machine = restore_machine(image)
    return machine, image.get("extra", {})
