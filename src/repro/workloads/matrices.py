"""Synthetic sparse-matrix suite (stand-in for the University of Florida
collection used in section 5.2).

The paper's Table 2 / Figures 7-8 results depend on three structural
axes: symmetry, non-zero pattern regularity (banded FEM stencils,
LP constraint blocks), and value self-similarity (repeating coefficient
patterns). Each generator below controls those axes explicitly; the
suite spans the paper's categories — FEM discretizations, linear
programs, symmetric graph/circuit matrices, patterned (block-repetitive)
operators, and unstructured randoms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

Entry = Tuple[int, int, float]


@dataclass
class MatrixSpec:
    """One generated matrix: its entries plus classification metadata."""

    name: str
    category: str  # "fem" | "lp" | "graph" | "patterned" | "random"
    n: int
    m: int
    entries: List[Entry]
    symmetric: bool

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.entries)

    def csr_bytes(self) -> int:
        """Conventional CSR footprint: 8*(1.5*nnz + 0.5*m) bytes, or the
        symmetric-CSR variant when the matrix is symmetric (section
        5.2.2's formulas)."""
        if not self.symmetric:
            return 8 * int(1.5 * self.nnz + 0.5 * self.n)
        on_diag = sum(1 for r, c, _ in self.entries if r == c)
        off_diag = self.nnz - on_diag
        effective = on_diag + 0.5 * off_diag
        return 8 * int(1.5 * effective + 0.5 * self.n)


def fem_2d(n_grid: int, name: str, seed: int = 0,
           coefficient_pool: int = 4, jitter: float = 0.18) -> MatrixSpec:
    """5-point Laplacian stencil on an ``n_grid`` x ``n_grid`` mesh.

    Symmetric and banded; a small coefficient pool (materials) gives the
    value self-similarity typical of FEM assembly, while ``jitter``
    perturbs a fraction of elements uniquely (mesh irregularity) so the
    matrix does not collapse to a handful of repeated blocks.
    """
    rng = random.Random((seed, name).__repr__())
    coeffs = [round(rng.uniform(0.5, 4.0), 3) for _ in range(coefficient_pool)]
    n = n_grid * n_grid
    entries: Dict[Tuple[int, int], float] = {}
    for i in range(n_grid):
        for j in range(n_grid):
            row = i * n_grid + j
            c = coeffs[(i // 4 + j // 4) % len(coeffs)]
            if rng.random() < jitter:
                c = round(c * rng.uniform(0.9, 1.1), 6)  # local irregularity
            entries[(row, row)] = 4.0 * c
            for di, dj in ((0, 1), (1, 0)):
                ni, nj = i + di, j + dj
                if ni < n_grid and nj < n_grid:
                    col = ni * n_grid + nj
                    entries[(row, col)] = -c
                    entries[(col, row)] = -c
    return MatrixSpec(name, "fem", n, n,
                      [(r, c, v) for (r, c), v in sorted(entries.items())],
                      symmetric=True)


def lp_block(n_vars: int, n_cons: int, name: str, seed: int = 0,
             block: int = 8, repeat_values: bool = False) -> MatrixSpec:
    """LP constraint matrix: repeated structural blocks, non-symmetric.

    Each constraint touches a contiguous variable block plus a few
    coupling columns — the staircase structure of multiperiod LPs. With
    ``repeat_values`` the blocks reuse one coefficient stencil (pattern
    *and* value similarity); otherwise values are unique (pattern-only
    similarity, the NZD case).
    """
    rng = random.Random((seed, name).__repr__())
    stencil = [round(rng.uniform(-3, 3), 2) or 1.0 for _ in range(block)]
    entries: List[Entry] = []
    for row in range(n_cons):
        base = (row * block // 2) % max(1, n_vars - block)
        for k in range(block):
            col = base + k
            if col < n_vars:
                value = stencil[k] if repeat_values else round(
                    rng.uniform(-3, 3), 4) or 1.0
                entries.append((row, col, value))
        # sparse coupling column
        entries.append((row, n_vars - 1, 1.0))
    return MatrixSpec(name, "lp", n_cons, n_vars, entries, symmetric=False)


def graph_symmetric(n: int, degree: int, name: str, seed: int = 0,
                    unit_weights: bool = True) -> MatrixSpec:
    """Symmetric adjacency-like matrix (circuit / network problems)."""
    rng = random.Random((seed, name).__repr__())
    entries: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        entries[(i, i)] = float(degree)
        for _ in range(degree // 2):
            j = rng.randrange(n)
            if j != i:
                # edge weights come from a small pool (wire classes,
                # conductance bins) rather than a continuum
                w = 1.0 if unit_weights else rng.choice((0.5, 0.8, 1.0, 1.25, 1.6, 2.0))
                entries[(i, j)] = -w
                entries[(j, i)] = -w
    return MatrixSpec(name, "graph", n, n,
                      [(r, c, v) for (r, c), v in sorted(entries.items())],
                      symmetric=True)


def patterned_block(n: int, name: str, seed: int = 0, tile: int = 16) -> MatrixSpec:
    """Block-circulant operator: one dense tile repeated along diagonals.

    Maximal self-similarity — the quad-tree collapses the repeats; the
    paper notes one matrix compacted by ~4000x, which is this regime.
    """
    rng = random.Random((seed, name).__repr__())
    stencil = [[round(rng.uniform(-1, 1), 2) or 0.5 for _ in range(tile)]
               for _ in range(tile)]
    entries: List[Entry] = []
    for b in range(n // tile):
        base = b * tile
        for i in range(tile):
            for j in range(tile):
                if stencil[i][j]:
                    entries.append((base + i, base + j, stencil[i][j]))
    return MatrixSpec(name, "patterned", n, n, entries, symmetric=False)


def random_sparse(n: int, nnz: int, name: str, seed: int = 0,
                  symmetric: bool = False) -> MatrixSpec:
    """Unstructured random matrix — little for dedup to find."""
    rng = random.Random((seed, name).__repr__())
    entries: Dict[Tuple[int, int], float] = {}
    while len(entries) < nnz:
        i, j = rng.randrange(n), rng.randrange(n)
        v = round(rng.uniform(-10, 10), 4) or 1.0
        entries[(i, j)] = v
        if symmetric:
            entries[(j, i)] = v
    return MatrixSpec(name, "random", n, n,
                      [(r, c, v) for (r, c), v in sorted(entries.items())],
                      symmetric=symmetric)


def matrix_suite(scale: int = 1, seed: int = 0) -> List[MatrixSpec]:
    """The evaluation suite, spanning the paper's categories.

    ``scale`` multiplies matrix dimensions (1 keeps the suite laptop-fast;
    the paper used matrices larger than the 4 MB L2, which scale >= 4
    approaches for the traffic study).
    """
    s = scale
    suite = [
        fem_2d(16 * s, "fem2d-small", seed),
        fem_2d(24 * s, "fem2d-mid", seed + 1),
        fem_2d(32 * s, "fem2d-large", seed + 2),
        fem_2d(24 * s, "fem2d-uniform", seed + 3, coefficient_pool=1),
        lp_block(256 * s, 192 * s, "lp-stair", seed),
        lp_block(384 * s, 256 * s, "lp-stair-wide", seed + 1),
        lp_block(256 * s, 192 * s, "lp-repeat", seed + 2, repeat_values=True),
        graph_symmetric(512 * s, 8, "graph-unit", seed),
        graph_symmetric(512 * s, 6, "graph-weighted", seed + 1,
                        unit_weights=False),
        graph_symmetric(768 * s, 8, "graph-large", seed + 2),
        patterned_block(512 * s, "pattern-circulant", seed),
        patterned_block(256 * s, "pattern-small", seed + 1, tile=8),
        random_sparse(256 * s, 8192 * s, "random-asym", seed),
        random_sparse(256 * s, 12288 * s, "random-sym", seed + 1,
                      symmetric=True),
        random_sparse(384 * s, 4608 * s, "random-sparse", seed + 2),
    ]
    return suite
