"""Synthetic workload generators.

The paper evaluates on datasets we cannot ship (Facebook/Wikipedia page
dumps, the University of Florida sparse matrix collection, VMmark VM
memory snapshots). Each generator here synthesizes inputs that exercise
the same axes those datasets exercise — byte-level sharing across items,
non-zero structure and symmetry of matrices, page- vs line-level
duplication across VM images — with seeded determinism so results are
reproducible. DESIGN.md documents each substitution.
"""

from repro.workloads.text import TextCorpus, corpus_for_dataset
from repro.workloads.traces import MemcachedWorkload, generate_workload, zipf_sample
from repro.workloads.matrices import MatrixSpec, matrix_suite
from repro.workloads.vm_images import VmImage, scale_vms, vmmark_tile

__all__ = [
    "TextCorpus",
    "corpus_for_dataset",
    "MemcachedWorkload",
    "generate_workload",
    "zipf_sample",
    "MatrixSpec",
    "matrix_suite",
    "VmImage",
    "scale_vms",
    "vmmark_tile",
]
