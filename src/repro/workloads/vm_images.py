"""Synthetic VM memory images (stand-in for the paper's VMmark snapshots,
section 5.3, Figures 9-10).

A VMmark tile holds six VMs (database, java, mail, web, file, standby)
over a mix of 32/64-bit guests. What Figures 9-10 measure is duplicate
content across the tile's physical memory at two granularities: whole
4 KB pages (what a hypervisor's page sharing can reclaim) and 64-byte
lines (what HICAMP reclaims). The generator therefore composes each VM
image from:

* **zero pages** (guest free memory),
* **OS pool pages** shared by every VM running the same guest OS,
* **role pool pages** shared by VMs of the same workload role
  (application binaries, library text),
* **patched pages** — a shared page with a handful of 64-byte lines
  rewritten (relocations, dirty heap): page sharing loses the whole
  page, line dedup loses only the touched lines,
* **unique pages**: per-VM anonymous data, partially built from a
  per-role line vocabulary (intra-page, cross-VM line-level similarity)
  and partially high-entropy.

Sizes are scaled to a few hundred KB per VM (the paper's VMs are GBs);
the compaction *ratios* are governed by the composition fractions, not
the absolute size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

PAGE = 4096
LINE = 64

#: Per-role image composition. Fractions must sum to <= 1.0; the
#: remainder is unique high-entropy data. The mixes follow the workload
#: characters: the standby server is almost all zero/OS pages (the paper
#: shows it compacting the most), the database has large unique buffer
#: caches, the file server's cache is high-entropy file data.
ROLE_PROFILES: Dict[str, dict] = {
    "database": dict(pages=48, zero=0.30, os=0.20, role=0.15, patched=0.16,
                     vocab=0.12, guest="linux64"),
    "java":     dict(pages=32, zero=0.32, os=0.22, role=0.18, patched=0.14,
                     vocab=0.10, guest="linux64"),
    "mail":     dict(pages=32, zero=0.30, os=0.24, role=0.18, patched=0.14,
                     vocab=0.10, guest="win64"),
    "web":      dict(pages=20, zero=0.34, os=0.24, role=0.18, patched=0.12,
                     vocab=0.08, guest="linux32"),
    "file":     dict(pages=12, zero=0.22, os=0.20, role=0.14, patched=0.10,
                     vocab=0.08, guest="win32"),
    "standby":  dict(pages=12, zero=0.60, os=0.28, role=0.06, patched=0.03,
                     vocab=0.02, guest="win32"),
}

TILE_ROLES = ("database", "java", "mail", "web", "file", "standby")


@dataclass
class VmImage:
    """One VM's memory snapshot."""

    role: str
    vm_id: int
    pages: List[bytes] = field(default_factory=list)

    @property
    def allocated_bytes(self) -> int:
        """Configured (allocated) memory size."""
        return len(self.pages) * PAGE


class _Pools:
    """Shared page/line pools, lazily built per guest OS and role."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(("vm-pools", seed).__repr__())
        self.os_pages: Dict[str, List[bytes]] = {}
        self.role_pages: Dict[str, List[bytes]] = {}
        self.role_vocab: Dict[str, List[bytes]] = {}

    def _random_page(self) -> bytes:
        return self._rng.getrandbits(8 * PAGE).to_bytes(PAGE, "big")

    def _random_line(self) -> bytes:
        return self._rng.getrandbits(8 * LINE).to_bytes(LINE, "big")

    def os_pool(self, guest: str, size: int = 12) -> List[bytes]:
        if guest not in self.os_pages:
            self.os_pages[guest] = [self._random_page() for _ in range(size)]
        return self.os_pages[guest]

    def role_pool(self, role: str, size: int = 8) -> List[bytes]:
        if role not in self.role_pages:
            self.role_pages[role] = [self._random_page() for _ in range(size)]
        return self.role_pages[role]

    def vocab(self, role: str, size: int = 96) -> List[bytes]:
        if role not in self.role_vocab:
            self.role_vocab[role] = [self._random_line() for _ in range(size)]
        return self.role_vocab[role]


def _patch_page(rng: random.Random, page: bytes, lines: int = 2) -> bytes:
    """Rewrite a few 64-byte lines of a shared page (dirty/relocated)."""
    data = bytearray(page)
    for _ in range(lines):
        at = rng.randrange(PAGE // LINE) * LINE
        data[at:at + LINE] = rng.getrandbits(8 * LINE).to_bytes(LINE, "big")
    return bytes(data)


def _vocab_page(rng: random.Random, vocab: List[bytes]) -> bytes:
    """A page assembled from the role's line vocabulary plus noise."""
    out = []
    for _ in range(PAGE // LINE):
        if rng.random() < 0.75:
            out.append(rng.choice(vocab))
        else:
            out.append(rng.getrandbits(8 * LINE).to_bytes(LINE, "big"))
    return b"".join(out)


def generate_vm(role: str, vm_id: int, pools: _Pools, seed: int = 0) -> VmImage:
    """Generate one VM image for a role."""
    profile = ROLE_PROFILES[role]
    rng = random.Random(("vm", role, vm_id, seed).__repr__())
    os_pool = pools.os_pool(profile["guest"])
    role_pool = pools.role_pool(role)
    vocab = pools.vocab(role)
    image = VmImage(role=role, vm_id=vm_id)
    for _ in range(profile["pages"]):
        x = rng.random()
        if x < profile["zero"]:
            image.pages.append(b"\x00" * PAGE)
        elif x < profile["zero"] + profile["os"]:
            image.pages.append(rng.choice(os_pool))
        elif x < profile["zero"] + profile["os"] + profile["role"]:
            image.pages.append(rng.choice(role_pool))
        elif x < (profile["zero"] + profile["os"] + profile["role"]
                  + profile["patched"]):
            base = rng.choice(os_pool if rng.random() < 0.5 else role_pool)
            image.pages.append(_patch_page(rng, base))
        elif x < (profile["zero"] + profile["os"] + profile["role"]
                  + profile["patched"] + profile["vocab"]):
            image.pages.append(_vocab_page(rng, vocab))
        else:
            image.pages.append(rng.getrandbits(8 * PAGE).to_bytes(PAGE, "big"))
    return image


def vmmark_tile(tile_id: int, pools: _Pools = None, seed: int = 0) -> List[VmImage]:
    """The six VMs of one VMmark tile."""
    if pools is None:
        pools = _Pools(seed)
    return [generate_vm(role, tile_id * 10 + i, pools, seed)
            for i, role in enumerate(TILE_ROLES)]


def scale_vms(role: str, count: int, seed: int = 0) -> List[VmImage]:
    """``count`` instances of one role's VM (the Figure 9 x-axis)."""
    pools = _Pools(seed)
    return [generate_vm(role, i, pools, seed) for i in range(count)]
