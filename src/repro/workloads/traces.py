"""Memcached request traces (section 5.1.2).

The paper's trace "was generated using a power-law distribution for item
frequency and size which is typical for memcached workloads", over items
built from Facebook page dumps, with a 10:1 get:set ratio used for the
concurrency analysis (section 5.1.1). :class:`MemcachedWorkload`
reproduces that: a preload phase installing N key-value pairs, then a
request stream with Zipfian key popularity and a configurable command
mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads.text import TextCorpus, corpus_for_dataset


def zipf_sample(rng: random.Random, n: int, alpha: float = 1.0) -> int:
    """Sample an index in ``[0, n)`` with Zipf(alpha) popularity.

    Index 0 is the most popular. Uses the inverse-CDF over precomputed
    weights for small ``n`` fallback-free determinism.
    """
    # cache the CDF per (n, alpha) to keep sampling cheap
    key = (n, alpha)
    cdf = _ZIPF_CACHE.get(key)
    if cdf is None:
        weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        _ZIPF_CACHE[key] = cdf
    x = rng.random()
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


_ZIPF_CACHE: Dict[Tuple[int, float], List[float]] = {}


@dataclass
class Request:
    """One memcached command."""

    op: str  # "get" | "set" | "delete"
    key: bytes
    value: Optional[bytes] = None


@dataclass
class MemcachedWorkload:
    """A preload corpus plus a request stream over it."""

    preload: Dict[bytes, bytes]
    requests: List[Request]
    corpus: TextCorpus = None

    @property
    def get_fraction(self) -> float:
        """Fraction of requests that are gets."""
        gets = sum(1 for r in self.requests if r.op == "get")
        return gets / len(self.requests) if self.requests else 0.0


def generate_workload(dataset: str = "facebook", n_requests: int = 1500,
                      get_ratio: float = 0.9, delete_ratio: float = 0.01,
                      zipf_alpha: float = 1.0, seed: int = 0,
                      n_items: int = None) -> MemcachedWorkload:
    """Build a memcached workload over a synthetic corpus.

    ``get_ratio`` of requests are gets (the paper's analysis assumes a
    10:1 get:set mix); sets rewrite an existing key with a new variant of
    its value or insert a fresh item; a small ``delete_ratio`` removes
    keys. Key popularity is Zipfian.
    """
    corpus = corpus_for_dataset(dataset, seed=seed, n_items=n_items)
    rng = random.Random((seed, dataset, n_requests).__repr__())
    keys = list(corpus.items)
    requests: List[Request] = []
    fresh = 0
    for _ in range(n_requests):
        x = rng.random()
        key = keys[zipf_sample(rng, len(keys), zipf_alpha)]
        if x < get_ratio:
            requests.append(Request("get", key))
        elif x < get_ratio + delete_ratio:
            requests.append(Request("delete", key))
        else:
            base = corpus.items[key]
            if rng.random() < 0.3:
                # insert a fresh key (new content, same shape)
                fresh += 1
                key = b"fresh-%05d" % fresh
            # a set rewrites mostly-identical content (a page regenerated
            # with a small dynamic part changed)
            cut = rng.randrange(0, max(1, len(base) // 2))
            value = (base[:cut] + b"[upd-%08x]" % rng.getrandbits(32)
                     + base[cut + 10:]) if len(base) > cut + 10 else base
            requests.append(Request("set", key, value))
    return MemcachedWorkload(preload=dict(corpus.items), requests=requests,
                             corpus=corpus)
