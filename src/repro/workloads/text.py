"""Synthetic web-content corpora (stand-in for the paper's memcached
datasets, Table 1).

The paper's items were Wikipedia/Facebook page dumps: HTML pages and
scripts share large boilerplate runs (templates, navigation, style and
script blocks) across items, while compressed images are high-entropy
with occasional whole-item duplicates (the same logo/thumbnail cached
twice). The generators reproduce those axes:

* a **fragment pool** of shared byte runs; each text item interleaves
  pool fragments with item-unique filler. Fragments are padded to
  16-byte boundaries, so finer memory lines capture more of the sharing
  than coarser ones — the Table 1 trend of compaction falling as line
  size grows;
* **image items** are seeded high-entropy blobs with a configurable
  whole-item duplication rate and no intra-item sharing.

Dataset presets approximate the paper's classes: ``wikipedia`` (moderate
sharing), ``facebook`` (heavy boilerplate), ``scripts`` (heavy sharing,
small items), ``images`` (entropy + duplicates).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List

_ALIGN = 16

_WORDS = (
    "the of and a to in is you that it he was for on are as with his they "
    "I at be this have from or one had by word but not what all were we "
    "when your can said there use an each which she do how their if will "
    "up other about out many then them these so some her would make like "
    "him into time has look two more write go see number no way could "
    "people my than first water been call who oil its now find long down "
    "day did get come made may part"
).split()


def _pad(data: bytes, align: int = _ALIGN) -> bytes:
    """Pad with spaces to an alignment boundary (boilerplate whitespace)."""
    if len(data) % align:
        data += b" " * (align - len(data) % align)
    return data


def _html_fragment(rng: random.Random, size: int) -> bytes:
    """One shared boilerplate fragment: markup plus word salad."""
    tags = ("div", "span", "td", "li", "p", "script", "nav", "a")
    parts: List[str] = []
    while sum(len(p) for p in parts) < size:
        tag = rng.choice(tags)
        words = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(3, 12)))
        parts.append("<%s class=\"c%d\">%s</%s>" % (tag, rng.randint(0, 40),
                                                    words, tag))
    return _pad("".join(parts).encode()[:size])


def _unique_filler(rng: random.Random, size: int) -> bytes:
    """Item-unique content (never repeats across items)."""
    alphabet = string.ascii_letters + string.digits + " .,"
    return _pad("".join(rng.choice(alphabet) for _ in range(size)).encode())


@dataclass
class CorpusSpec:
    """Parameters of one synthetic dataset class."""

    name: str
    n_items: int
    mean_size: int
    shared_fraction: float  # fraction of each item drawn from the pool
    pool_fragments: int
    fragment_size: int
    duplicate_rate: float = 0.0  # whole-item duplicates
    binary: bool = False  # high-entropy (image-like) items


#: Presets approximating the paper's Table 1 dataset classes. Item counts
#: and sizes are scaled down for simulator speed; EXPERIMENTS.md records
#: the scaling.
DATASETS: Dict[str, CorpusSpec] = {
    "wikipedia": CorpusSpec("wikipedia", n_items=120, mean_size=6000,
                            shared_fraction=0.33, pool_fragments=48,
                            fragment_size=512, duplicate_rate=0.02),
    "facebook": CorpusSpec("facebook", n_items=120, mean_size=4000,
                           shared_fraction=0.74, pool_fragments=24,
                           fragment_size=512, duplicate_rate=0.05),
    "scripts": CorpusSpec("scripts", n_items=60, mean_size=1500,
                          shared_fraction=0.76, pool_fragments=16,
                          fragment_size=256, duplicate_rate=0.08),
    "images": CorpusSpec("images", n_items=80, mean_size=3000,
                         shared_fraction=0.0, pool_fragments=0,
                         fragment_size=0, duplicate_rate=0.22, binary=True),
}


@dataclass
class TextCorpus:
    """A generated corpus: named items plus provenance metadata."""

    spec: CorpusSpec
    items: Dict[bytes, bytes] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Total payload bytes across items (the conventional footprint)."""
        return sum(len(v) for v in self.items.values())


def corpus_for_dataset(name: str, seed: int = 0,
                       n_items: int = None) -> TextCorpus:
    """Generate a corpus for one of the Table 1 dataset classes."""
    spec = DATASETS[name]
    if n_items is not None:
        spec = CorpusSpec(**{**spec.__dict__, "n_items": n_items})
    rng = random.Random((seed, name).__repr__())
    corpus = TextCorpus(spec)

    if spec.binary:
        distinct: List[bytes] = []
        for i in range(spec.n_items):
            size = max(256, int(rng.expovariate(1.0 / spec.mean_size)))
            if distinct and rng.random() < spec.duplicate_rate:
                blob = rng.choice(distinct)  # whole-item duplicate
            else:
                blob = rng.getrandbits(8 * size).to_bytes(size, "big")
                distinct.append(blob)
            corpus.items[b"img-%05d" % i] = blob
        return corpus

    pool = [_html_fragment(rng, spec.fragment_size)
            for _ in range(spec.pool_fragments)]
    originals: List[bytes] = []
    for i in range(spec.n_items):
        if originals and rng.random() < spec.duplicate_rate:
            item = rng.choice(originals)
        else:
            size = max(512, int(rng.expovariate(1.0 / spec.mean_size)))
            parts: List[bytes] = []
            total = 0
            while total < size:
                if rng.random() < spec.shared_fraction:
                    frag = rng.choice(pool)
                else:
                    frag = _unique_filler(rng, rng.randint(48, 160))
                parts.append(frag)
                total += len(frag)
            item = b"".join(parts)[:size]
            originals.append(item)
        corpus.items[b"page-%05d" % i] = item
    return corpus
