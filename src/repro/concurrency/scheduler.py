"""A deterministic cooperative scheduler for concurrency tests.

Tasks are Python generators; every ``yield`` is a preemption point.
Operations performed between two yields are atomic with respect to other
tasks — which matches the architecture's model, where the only shared
mutable state is the segment map and each CAS/commit is one atomic step.

The scheduler can run round-robin or with a seeded pseudo-random
interleaving, so races are reproducible::

    def writer(machine, vsid, value):
        yield                      # let others get a snapshot first
        machine.write_word(vsid, 0, value)
        yield

    sched = Scheduler(seed=7)
    sched.spawn("w1", writer(m, v, 1))
    sched.spawn("w2", writer(m, v, 2))
    sched.run()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional


@dataclass
class Task:
    """One schedulable task wrapping a generator."""

    name: str
    gen: Generator
    steps: int = 0
    done: bool = False
    result: Any = None
    error: Optional[BaseException] = None


class Scheduler:
    """Deterministic interleaving of cooperative tasks."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed) if seed is not None else None
        self.tasks: List[Task] = []
        self.total_steps = 0

    def spawn(self, name: str, gen: Generator) -> Task:
        """Register a task; it starts running on :meth:`run`."""
        task = Task(name=name, gen=gen)
        self.tasks.append(task)
        return task

    def _pick(self, runnable: List[Task]) -> Task:
        if self._rng is not None:
            return self._rng.choice(runnable)
        return runnable[self.total_steps % len(runnable)]

    def step(self) -> bool:
        """Advance one task by one yield; False when all tasks finished."""
        runnable = [t for t in self.tasks if not t.done]
        if not runnable:
            return False
        task = self._pick(runnable)
        try:
            task.gen.send(None)
            task.steps += 1
        except StopIteration as stop:
            task.done = True
            task.result = stop.value
        except BaseException as exc:  # surfaced after run()
            task.done = True
            task.error = exc
        self.total_steps += 1
        return True

    def run(self, max_steps: int = 1_000_000, raise_errors: bool = True) -> None:
        """Run until every task completes (or ``max_steps``)."""
        steps = 0
        while self.step():
            steps += 1
            if steps > max_steps:
                raise RuntimeError("scheduler exceeded %d steps" % max_steps)
        if raise_errors:
            for task in self.tasks:
                if task.error is not None:
                    raise task.error

    def results(self) -> Dict[str, Any]:
        """Task name → return value."""
        return {t.name: t.result for t in self.tasks}
