"""Deterministic concurrency simulation.

The paper's concurrency claims (snapshot isolation, write-write-only
conflicts, merge-update under contention) are *semantic*; this package
provides a deterministic scheduler that interleaves generator-based tasks
at explicit yield points so those semantics can be exercised and tested
reproducibly, without real threads.
"""

from repro.concurrency.scheduler import Scheduler, Task

__all__ = ["Scheduler", "Task"]
