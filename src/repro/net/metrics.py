"""Serving-layer metrics: throughput, latency percentiles, pipelining
and merge-commit accounting.

The paper's concurrency argument (§5.1.1) is about what happens *under
load*: lost CAS races resolved by merge-update instead of retries. The
network server therefore counts exactly those events — alongside the
operational numbers (ops/s, latency percentiles, pipeline depth) any
cache server must export — and exposes all of it both as ``STAT`` lines
for the ``stats`` protocol command and as a JSON-safe snapshot dict.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

# shared with benchmark reporting so the stats command and rendered
# benchmark tables agree on percentile definitions
from repro.analysis.reporting import latency_summary, percentile

__all__ = ["ServerMetrics", "latency_summary", "percentile"]


@dataclass
class ServerMetrics:
    """Counters and reservoirs for one serving process."""

    #: keep this many most-recent request latencies for percentiles
    reservoir_size: int = 4096

    #: time source for request timing and uptime. Injectable so tests
    #: can drive a deterministic monotonic clock and latency-percentile
    #: assertions stop depending on wall time.
    clock: Callable[[], float] = time.monotonic

    ops_total: int = 0
    ops_by_command: Counter = field(default_factory=Counter)
    bytes_in: int = 0
    bytes_out: int = 0

    connections_opened: int = 0
    connections_closed: int = 0
    read_timeouts: int = 0

    frames_decoded: int = 0
    #: frames that arrived pipelined behind another in the same read
    pipelined_requests: int = 0
    max_pipeline_depth: int = 0

    protocol_errors: int = 0
    server_errors: int = 0

    #: write batches drained from a shard commit queue in one go
    commit_batches: int = 0
    #: lost CAS races absorbed by merge-update (no application retry)
    merge_commits: int = 0
    #: application-level retries (logically conflicting updates)
    cas_retries: int = 0
    queue_high_watermark: int = 0
    pending_at_shutdown: int = 0

    #: committed root advances per VSID — replication lag is measured in
    #: these units (commits the leader applied that a follower has not
    #: yet acknowledged)
    commits_by_vsid: Counter = field(default_factory=Counter)

    _started: float = -1.0
    _latencies: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self._started < 0:
            self._started = self.clock()

    def now(self) -> float:
        """The metrics time source (the server timestamps through it)."""
        return self.clock()

    # ------------------------------------------------------------------

    def observe_read(self, nbytes: int, nframes: int) -> None:
        """Account one socket read that decoded ``nframes`` requests."""
        self.bytes_in += nbytes
        self.frames_decoded += nframes
        if nframes > 1:
            self.pipelined_requests += nframes - 1
        self.max_pipeline_depth = max(self.max_pipeline_depth, nframes)

    def observe_request(self, command: bytes, latency_s: float,
                        response_bytes: int) -> None:
        """Account one completed request."""
        self.ops_total += 1
        self.ops_by_command[command.decode("ascii", "replace")] += 1
        self.bytes_out += response_bytes
        self._latencies.append(latency_s)
        while len(self._latencies) > self.reservoir_size:
            self._latencies.popleft()

    def observe_queue_depth(self, depth: int) -> None:
        self.queue_high_watermark = max(self.queue_high_watermark, depth)

    def observe_commit(self, vsid: int) -> None:
        """Account one committed root advance of segment ``vsid``."""
        self.commits_by_vsid[vsid] += 1

    # ------------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return max(1e-9, self.clock() - self._started)

    @property
    def ops_per_second(self) -> float:
        return self.ops_total / self.uptime_seconds

    def latency_ms(self) -> List[float]:
        return [s * 1000.0 for s in self._latencies]

    def snapshot(self, extra: Optional[Dict] = None) -> Dict:
        """JSON-safe metrics snapshot (the ``stats json`` payload)."""
        snap: Dict = {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "ops_total": self.ops_total,
            "ops_per_second": round(self.ops_per_second, 1),
            "ops_by_command": dict(self.ops_by_command),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "read_timeouts": self.read_timeouts,
            "frames_decoded": self.frames_decoded,
            "pipelined_requests": self.pipelined_requests,
            "max_pipeline_depth": self.max_pipeline_depth,
            "protocol_errors": self.protocol_errors,
            "server_errors": self.server_errors,
            "commit_batches": self.commit_batches,
            "merge_commits": self.merge_commits,
            "cas_retries": self.cas_retries,
            "queue_high_watermark": self.queue_high_watermark,
            "pending_at_shutdown": self.pending_at_shutdown,
            "commits_by_vsid": {str(v): n
                                for v, n in self.commits_by_vsid.items()},
            "latency": latency_summary(self.latency_ms()),
        }
        if extra:
            snap.update(extra)
        return snap

    def stats_lines(self) -> List[bytes]:
        """``STAT name value`` lines for the ``stats`` command."""
        snap = self.snapshot()
        latency = snap.pop("latency")
        snap.pop("ops_by_command")
        snap.pop("commits_by_vsid")
        snap.update(latency)
        return [b"STAT %s %s\r\n" % (name.encode(), str(value).encode())
                for name, value in sorted(snap.items())]
