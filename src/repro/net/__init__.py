"""The serving layer: HICAMP memcached on a real socket.

The paper's §4.4 claim — snapshot reads without locks, atomic root-swap
commits with merge-update absorbing non-conflicting races — is only
interesting under *concurrent client load*. This package provides that
load path end to end:

* :mod:`repro.net.framing` — streaming decoder for partial reads and
  pipelined requests;
* :mod:`repro.net.router` — key fan-out across sharded backends with
  per-shard asyncio commit queues and batched merge-commits;
* :mod:`repro.net.server` — the asyncio TCP server (timeouts,
  backpressure, graceful shutdown);
* :mod:`repro.net.metrics` — ops/s, latency percentiles, pipeline depth,
  CAS-retry and merge-commit counters (``stats`` / ``stats json``);
* :mod:`repro.net.loadgen` — a pipelining multi-client load generator
  with a built-in sequential-oracle consistency check;
* :mod:`repro.net.adaptive` — the per-shard commit controller behind
  ``commit_mode="adaptive"`` (online strategy switching with
  hysteresis).
"""

from repro.net.adaptive import (AdaptiveConfig, BatchSample,
                                CommitController)
from repro.net.framing import Frame, FrameDecoder
from repro.net.loadgen import (LoadgenClient, LoadgenReport, PhaseSpec,
                               parse_phases, run_loadgen)
from repro.net.metrics import ServerMetrics, latency_summary, percentile
from repro.net.router import ConnectionState, ShardRouter
from repro.net.server import MemcachedServer, serve

__all__ = [
    "AdaptiveConfig",
    "BatchSample",
    "CommitController",
    "Frame",
    "FrameDecoder",
    "LoadgenClient",
    "LoadgenReport",
    "PhaseSpec",
    "parse_phases",
    "run_loadgen",
    "ServerMetrics",
    "latency_summary",
    "percentile",
    "ConnectionState",
    "ShardRouter",
    "MemcachedServer",
    "serve",
]
