"""``repro bench scale`` — the million-key multi-tenant scenario bench.

Everything the serving stack claims has so far been measured at cache
scale (thousands of keys). This bench pushes the *paper's* scale claim:
HICAMP's dedup and canonical sharing matter most when the store is
large and the traffic is skewed. It drives the real asyncio stack —
:class:`~repro.net.server.MemcachedServer` over
:class:`~repro.net.router.ShardRouter` over
:class:`~repro.apps.memcached.tenants.TenantMemcached` — end to end:

* **multi-process**: each worker process owns a full server (its own
  machine, router, shards) and a slice of the keyspace, so the bench
  scales past one interpreter's GIL to millions of keys;
* **multi-tenant**: keys carry a ``tNN:`` prefix, so every worker's
  store fans out into per-tenant namespaces (separate VSIDs, per-tenant
  stats through the PR 4 observability registry);
* **populate phase**: bulk ``set_many`` commits (one canonical-tree
  rebuild per batch) measured as ingest ops/s;
* **serve phase**: Zipfian pipelined ``get``/``set`` traffic over a
  real TCP socket, measured as batch-RTT p50/p99 — the skew means the
  hot ranks hammer the memo'd paths while the tail walks cold trees;
* **footprint accounting**: unique line bytes (what the dedup store
  actually holds) against logical bytes (what a conventional store
  would hold), i.e. the measured **dedup ratio** at scale.

Results land in ``BENCH_scale.json``; ``--check`` enforces an ingest
floor so CI catches order-of-magnitude regressions without flaking on
noise, and ``--smoke`` shrinks the run to seconds for the CI tier.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import random
import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Bench JSON schema tag (bump on shape changes).
SCHEMA = "repro.bench.scale/v1"

#: Default results file, repo-root relative (committed as the tracked
#: perf artifact, like BENCH.json / BENCH_cluster.json).
DEFAULT_OUT = "BENCH_scale.json"

CRLF = b"\r\n"


@dataclass
class ScaleConfig:
    """Shape of one scale run (fully seeded, smoke-scalable)."""

    keys: int = 1_000_000          # total across all workers
    workers: int = 4               # processes, each a full server
    tenants: int = 8               # namespace prefixes per worker
    shards: int = 2                # router shards per worker
    value_bytes: int = 64
    value_pool: int = 32           # distinct values (the dedup food)
    batch: int = 2000              # keys per populate set_many batch
    serve_ops: int = 20_000        # serve-phase ops per worker
    serve_batch: int = 64          # pipelined ops per socket write
    set_ratio: float = 0.1         # serve-phase write fraction
    zipf_s: float = 1.1            # serve-phase skew exponent
    seed: int = 0
    smoke: bool = False

    def per_worker_keys(self, worker: int) -> int:
        base, extra = divmod(self.keys, self.workers)
        return base + (1 if worker < extra else 0)

    def slice_start(self, worker: int) -> int:
        return sum(self.per_worker_keys(w) for w in range(worker))


def smoke_config(**overrides) -> ScaleConfig:
    """The CI tier: same machinery, seconds not minutes."""
    params = dict(keys=20_000, workers=2, serve_ops=2_000,
                  batch=1000, smoke=True)
    params.update(overrides)
    return ScaleConfig(**params)


# ----------------------------------------------------------------------
# seeded key/value material


def _tenant(index: int, tenants: int) -> bytes:
    return b"t%02d" % (index % tenants)


def _key(index: int, tenants: int) -> bytes:
    return b"%s:key-%016d" % (_tenant(index, tenants), index)


def _value_pool(cfg: ScaleConfig) -> List[bytes]:
    pool = []
    for i in range(cfg.value_pool):
        digest = hashlib.blake2b(b"scale/%d/%d" % (cfg.seed, i),
                                 digest_size=16).digest()
        reps = cfg.value_bytes // len(digest) + 1
        pool.append((digest * reps)[:cfg.value_bytes])
    return pool


def zipf_ranks(count: int, n: int, s: float, seed: int) -> List[int]:
    """``count`` Zipf(s)-distributed ranks in [0, n) (rank 0 hottest)."""
    try:
        import numpy
        weights = numpy.arange(1, n + 1, dtype=numpy.float64) ** -s
        cdf = numpy.cumsum(weights)
        cdf /= cdf[-1]
        rng = numpy.random.default_rng(seed)
        return numpy.searchsorted(
            cdf, rng.random(count)).astype(int).tolist()
    except ImportError:              # pure-python fallback, same law
        import bisect
        weights, total = [], 0.0
        for rank in range(1, n + 1):
            total += rank ** -s
            weights.append(total)
        rng = random.Random(seed)
        return [bisect.bisect_left(weights, rng.random() * total)
                for _ in range(count)]


# ----------------------------------------------------------------------
# worker process: one full server + its keyspace slice


@dataclass
class WorkerResult:
    worker: int = 0
    keys: int = 0
    populate_seconds: float = 0.0
    serve_ops: int = 0
    serve_seconds: float = 0.0
    get_hits: int = 0
    get_misses: int = 0
    stored: int = 0
    errors: int = 0
    batch_rtts_ms: List[float] = field(default_factory=list)
    footprint_bytes: int = 0
    footprint_lines: int = 0
    logical_bytes: int = 0
    tenants: int = 0


async def _read_reply(reader: asyncio.StreamReader, kind: str,
                      result: WorkerResult) -> None:
    if kind == "set":
        line = await reader.readline()
        if line.strip() == b"STORED":
            result.stored += 1
        else:
            result.errors += 1
        return
    hit = False
    while True:
        line = await reader.readline()
        if not line or line.strip() == b"END":
            break
        if line.startswith(b"VALUE "):
            size = int(line.split()[3])
            await reader.readexactly(size + 2)
            hit = True
    if hit:
        result.get_hits += 1
    else:
        result.get_misses += 1


async def _worker_async(cfg: ScaleConfig, worker: int) -> WorkerResult:
    from repro.apps.memcached.tenants import TenantMemcached
    from repro.net.server import MemcachedServer

    server = MemcachedServer(port=0, shard_count=cfg.shards,
                             backend_factory=TenantMemcached,
                             commit_mode="bulk")
    await server.start()
    result = WorkerResult(worker=worker,
                          keys=cfg.per_worker_keys(worker))
    pool = _value_pool(cfg)
    rng = random.Random(cfg.seed * 7919 + worker)
    start = cfg.slice_start(worker)  # dense, per-worker key slice

    # populate: bulk set_many per shard, the router's own selector
    backends = server.router.servers
    began = time.perf_counter()
    for low in range(0, result.keys, cfg.batch):
        per_shard: List[List] = [[] for _ in backends]
        for index in range(low, min(low + cfg.batch, result.keys)):
            key = _key(start + index, cfg.tenants)
            value = pool[rng.randrange(len(pool))]
            per_shard[zlib.crc32(key) % len(backends)].append(
                (key, value))
            result.logical_bytes += len(key) + len(value)
        for shard, items in enumerate(per_shard):
            if items:
                backends[shard].set_many(items)
        await asyncio.sleep(0)       # keep the loop responsive
    result.populate_seconds = time.perf_counter() - began

    # serve: Zipfian pipelined get/set over the real socket
    ranks = zipf_ranks(cfg.serve_ops, result.keys, cfg.zipf_s,
                       cfg.seed * 104729 + worker)
    reader, writer = await asyncio.open_connection("127.0.0.1",
                                                   server.port)
    began = time.perf_counter()
    for low in range(0, len(ranks), cfg.serve_batch):
        chunk = ranks[low:low + cfg.serve_batch]
        kinds, wire = [], []
        for rank in chunk:
            key = _key(start + rank, cfg.tenants)
            if rng.random() < cfg.set_ratio:
                value = pool[rng.randrange(len(pool))]
                wire.append(b"set %s 0 0 %d\r\n%s\r\n"
                            % (key, len(value), value))
                kinds.append("set")
            else:
                wire.append(b"get %s\r\n" % key)
                kinds.append("get")
        sent = time.perf_counter()
        writer.write(b"".join(wire))
        await writer.drain()
        for kind in kinds:
            await _read_reply(reader, kind, result)
        result.batch_rtts_ms.append(
            (time.perf_counter() - sent) * 1000.0)
        result.serve_ops += len(kinds)
    result.serve_seconds = time.perf_counter() - began
    writer.close()

    await server.router.drain()
    machine = server.router.machine
    machine.drain()
    result.footprint_bytes = machine.footprint_bytes()
    result.footprint_lines = machine.footprint_lines()
    result.tenants = len(set().union(
        *(backend.tenants for backend in backends)))
    await server.shutdown()
    return result


def _worker_main(cfg: ScaleConfig, worker: int, pipe) -> None:
    try:
        pipe.send(asdict(asyncio.run(_worker_async(cfg, worker))))
    except Exception as exc:          # surfaced by the parent
        pipe.send({"error": "%s: %s" % (type(exc).__name__, exc)})
    finally:
        pipe.close()


# ----------------------------------------------------------------------
# parent: fan out, merge, report


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    at = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[at]


def run_scale(cfg: Optional[ScaleConfig] = None) -> Dict:
    """Run the bench; returns the JSON-safe result document."""
    cfg = cfg or ScaleConfig()
    # fork keeps workers importable no matter how the parent was
    # launched (stdin scripts, pytest); spawn is the portable fallback
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"
    ctx = multiprocessing.get_context(method)
    procs, pipes = [], []
    wall = time.perf_counter()
    for worker in range(cfg.workers):
        parent_end, child_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(cfg, worker, child_end))
        proc.start()
        child_end.close()
        procs.append(proc)
        pipes.append(parent_end)
    payloads = []
    for proc, pipe in zip(procs, pipes):
        try:
            if pipe.poll(1800):
                payloads.append(pipe.recv())
            else:
                proc.terminate()
                payloads.append({"error": "worker timed out"})
        except EOFError:
            payloads.append({"error": "worker died without a result"})
    for proc in procs:
        proc.join()
    wall = time.perf_counter() - wall
    failures = [p["error"] for p in payloads if "error" in p]
    if failures:
        raise RuntimeError("scale worker failed: %s" % failures[0])
    results = [WorkerResult(**p) for p in payloads]

    rtts = [rtt for r in results for rtt in r.batch_rtts_ms]
    populate_seconds = max(r.populate_seconds for r in results)
    serve_seconds = max(r.serve_seconds for r in results)
    unique = sum(r.footprint_bytes for r in results)
    logical = sum(r.logical_bytes for r in results)
    serve_ops = sum(r.serve_ops for r in results)
    return {
        "schema": SCHEMA,
        "smoke": cfg.smoke,
        "seed": cfg.seed,
        "keys": sum(r.keys for r in results),
        "workers": cfg.workers,
        "tenants_per_worker": max(r.tenants for r in results),
        "shards": cfg.shards,
        "value_bytes": cfg.value_bytes,
        "wall_seconds": round(wall, 2),
        "populate": {
            "ops": sum(r.keys for r in results),
            "seconds": round(populate_seconds, 2),
            "ops_per_second": round(
                sum(r.keys for r in results)
                / max(1e-9, populate_seconds), 1),
        },
        "serve": {
            "ops": serve_ops,
            "seconds": round(serve_seconds, 2),
            "ops_per_second": round(
                serve_ops / max(1e-9, serve_seconds), 1),
            "p50_ms": round(_percentile(rtts, 0.50), 3),
            "p99_ms": round(_percentile(rtts, 0.99), 3),
            "get_hits": sum(r.get_hits for r in results),
            "get_misses": sum(r.get_misses for r in results),
            "stored": sum(r.stored for r in results),
            "errors": sum(r.errors for r in results),
        },
        "footprint": {
            "unique_bytes": unique,
            "unique_lines": sum(r.footprint_lines for r in results),
            "logical_bytes": logical,
            "dedup_ratio": round(logical / max(1, unique), 3),
        },
    }


def check_floor(result: Dict, floor: float) -> List[str]:
    """Regression gate: ingest throughput and serve sanity."""
    problems = []
    rate = result["populate"]["ops_per_second"]
    if rate < floor:
        problems.append("populate %.1f ops/s below floor %.1f"
                        % (rate, floor))
    if result["serve"]["errors"]:
        problems.append("%d serve-phase protocol errors"
                        % result["serve"]["errors"])
    if result["serve"]["get_misses"]:
        problems.append("%d misses on a fully-populated keyspace"
                        % result["serve"]["get_misses"])
    return problems


def render(result: Dict) -> str:
    lines = [
        "scale: %d keys, %d workers x %d shards, %d tenants/worker%s"
        % (result["keys"], result["workers"], result["shards"],
           result["tenants_per_worker"],
           " [smoke]" if result["smoke"] else ""),
        "  populate  %10.1f ops/s  (%.2fs)"
        % (result["populate"]["ops_per_second"],
           result["populate"]["seconds"]),
        "  serve     %10.1f ops/s  p50 %.3fms  p99 %.3fms"
        % (result["serve"]["ops_per_second"],
           result["serve"]["p50_ms"], result["serve"]["p99_ms"]),
        "  footprint %10d unique bytes / %d logical  (dedup %.2fx)"
        % (result["footprint"]["unique_bytes"],
           result["footprint"]["logical_bytes"],
           result["footprint"]["dedup_ratio"]),
    ]
    return "\n".join(lines)


def write_result(result: Dict, path: str = DEFAULT_OUT) -> None:
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
