"""The asyncio TCP front end: HICAMP memcached on a real socket.

``MemcachedServer`` accepts connections, feeds each socket's bytes
through a :class:`~repro.net.framing.FrameDecoder` (partial reads and
pipelined requests both work), and routes every complete frame through a
:class:`~repro.net.router.ShardRouter`. Responses are written strictly
in request order per connection — the memcached contract — while commits
proceed asynchronously on the shard workers, so a pipelining client
overlaps its requests with the server's commit work.

Connection lifecycle:

* per-connection **read timeout** (idle clients are dropped);
* **bounded in-flight** pipelining: at most ``max_inflight`` responses
  outstanding per connection before the reader stops dispatching, on top
  of the bounded per-shard commit queues (the write-side backpressure);
* ``quit`` and EOF both drain outstanding responses before closing;
* **graceful shutdown**: stop accepting, unblock reads, flush every
  commit queue, then stop the workers — no commit is ever dropped.

Example::

    async def main():
        server = MemcachedServer(port=0, shard_count=4)
        await server.start()
        print("listening on", server.port)
        await server.serve_forever()

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.machine import Machine
from repro.net.framing import FrameDecoder
from repro.net.metrics import ServerMetrics
from repro.net.router import WRITE_COMMANDS, ConnectionState, ShardRouter

#: Largest chunk requested from a socket per read.
READ_CHUNK = 1 << 16


class MemcachedServer:
    """Asyncio TCP server speaking the memcached ASCII protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 router: Optional[ShardRouter] = None,
                 machine: Optional[Machine] = None,
                 shard_count: int = 4,
                 read_timeout: Optional[float] = None,
                 max_inflight: int = 64,
                 injector=None,
                 recorder=None,
                 **router_kwargs) -> None:
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.max_inflight = max(1, max_inflight)
        #: optional :class:`repro.testing.faults.FaultInjector`. Hook
        #: points: split socket reads, reset-after-write-dispatch,
        #: delayed flushes, split response writes — plus the router's
        #: commit-stall hook. ``None`` keeps every hook a no-op.
        self.injector = injector
        self.router = router if router is not None else ShardRouter(
            machine=machine, shard_count=shard_count, injector=injector,
            recorder=recorder, **router_kwargs)
        if router is not None and injector is not None \
                and router.injector is None:
            router.injector = injector
        #: trace recorder shared with the router (no-op by default);
        #: request spans open at dispatch and close when the response
        #: is flushed, parenting the commit-batch spans downstream
        self.recorder = self.router.recorder
        self.metrics: ServerMetrics = self.router.metrics
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Start the shard workers and begin accepting connections."""
        await self.router.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful stop: drain connections, flush commits, stop workers.

        After this returns, every accepted write has been committed —
        ``metrics.pending_at_shutdown`` records the (always zero) count
        of commits still queued when the workers stopped.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
        # unblock connection readers stuck in read(); already-enqueued
        # commits still land — the queues drain below. Cancel before
        # wait_closed(): on 3.12+ wait_closed waits for these handlers.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        await self.router.drain()
        self.metrics.pending_at_shutdown = self.router.pending_commits()
        await self.router.stop()
        self._server = None

    async def abort(self) -> None:
        """Crash-stop: drop connections and queued commits on the floor.

        The fault-model counterpart of :meth:`shutdown` — nothing drains,
        nothing flushes. Used by the cluster harness to kill a leader the
        way a power cut would.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await self.router.abort()

    async def __aenter__(self) -> "MemcachedServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # per-connection protocol loop

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.metrics.connections_opened += 1
        conn_id = self.metrics.connections_opened
        recorder = self.recorder
        injector = self.injector
        scope = injector.next_connection() if injector is not None else -1
        decoder = FrameDecoder()
        conn = ConnectionState()
        inflight = []  # (dispatch time, command, awaitable, span), FIFO
        try:
            while not self._closing:
                data = b""
                if injector is not None:
                    data = injector.held_bytes(scope)
                if not data:
                    try:
                        data = await self._read(reader)
                    except asyncio.TimeoutError:
                        self.metrics.read_timeouts += 1
                        break
                    if not data:
                        break
                    if injector is not None:
                        data = injector.on_read(scope, data)
                frames = decoder.feed(data)
                self.metrics.observe_read(len(data), len(frames))
                quit_seen = False
                for frame in frames:
                    if frame.command == b"quit":
                        quit_seen = True
                        break
                    if len(inflight) >= self.max_inflight:
                        await self._flush(inflight, writer, scope)
                    span = None
                    if recorder.enabled:
                        span = recorder.begin(
                            "request", conn=conn_id,
                            command=frame.command.decode("ascii",
                                                         "replace"))
                    response = await self.router.dispatch(frame, conn,
                                                          span)
                    inflight.append(
                        (self.metrics.now(), frame.command, response,
                         span))
                    if injector is not None \
                            and frame.command in WRITE_COMMANDS:
                        # may raise InjectedReset: the commit is already
                        # enqueued, the response is never flushed — the
                        # "connection reset mid-commit" scenario
                        injector.after_dispatch(scope, frame.command)
                await self._flush(inflight, writer, scope)
                if quit_seen:
                    break
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self.metrics.connections_closed += 1
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _read(self, reader: asyncio.StreamReader) -> bytes:
        if self.read_timeout is None:
            return await reader.read(READ_CHUNK)
        return await asyncio.wait_for(reader.read(READ_CHUNK),
                                      self.read_timeout)

    async def _flush(self, inflight, writer: asyncio.StreamWriter,
                     scope: int = -1) -> None:
        """Resolve outstanding responses in order and write them out."""
        injector = self.injector
        if injector is not None and inflight:
            await injector.before_flush(scope)
        while inflight:
            started, command, awaitable, span = inflight.pop(0)
            response = await awaitable
            self.metrics.observe_request(
                command, self.metrics.now() - started, len(response))
            if span is not None:
                self.recorder.end(span, response_bytes=len(response))
            if injector is not None:
                for chunk in injector.split_write(scope, response):
                    writer.write(chunk)
                    await writer.drain()
            else:
                writer.write(response)
        await writer.drain()


async def serve(host: str = "127.0.0.1", port: int = 11211,
                **kwargs) -> None:
    """Run a server until cancelled (the ``repro serve`` entry point)."""
    server = MemcachedServer(host=host, port=port, **kwargs)
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown()
