"""Contention-adaptive commit-strategy control for the shard router.

The router has three commit strategies — per-op CAS (``"cas"``), staged
merge-batches (``"merge"``, §4.3 merge-update absorbing lost CASes) and
bulk ``put_many`` runs (``"bulk"``, one tree rebuild + one root CAS per
run) — and until now picked one statically at startup. A server tuned
for read-heavy snapshot traffic then collapses under a write storm and
vice versa. Following the live implementation-swapping idea in
"Adaptive Lock-Free Data Structures" (PAPERS.md), this module watches
the router's own metrics and retunes each shard online.

:class:`CommitController` keeps one lens per shard. The router feeds it
a :class:`BatchSample` after every commit batch (writes, duplicate-key
fraction, CAS retries, merge commits, queue depth, batch RTT) and a
cheap ``note_read`` tick per inline snapshot read. Every
``window`` batches the controller folds the accumulated window into
signals and re-decides three knobs **per shard**:

* **commit mode** — a set fraction ≤ ``enter_cas_set_frac`` selects
  ``cas`` (read-modify-write traffic: ``cas``/``delete``/counter
  frames can never join a batched run, so the run-building machinery
  buys nothing and per-op commits are cheapest); write fraction ≥
  ``enter_bulk_write_frac`` selects ``bulk`` (write storm: commits per
  set are what matter, and put_many absorbs duplicate keys last-wins
  so hot keys don't split runs); a duplicate-key fraction ≥
  ``enter_dup_frac`` also prefers ``bulk`` (same-key staging is a true
  conflict under merge, so merge runs must split exactly where bulk
  runs coalesce); anything else settles on ``merge`` — the balanced
  default;
* **batch limit** — storms raise it to ``storm_batch_limit`` so each
  queue drain coalesces more sets into one run;
* **reclaim drain budget** — storm windows clamp it to
  ``storm_reclaim_budget`` (by default the base rate: deferring the
  walks measures as a net loss once the backlog dribbles through the
  next phase), idle windows raise it to ``idle_reclaim_budget`` (the
  PR 9 "idle-time drains" follow-on: catch up while nobody is
  waiting);
* **storm staging** (``hop_reads``) — while the controller holds a
  shard in bulk mode, the router may resolve key-disjoint read fences
  early and commute key-disjoint non-set writes around the staged
  run, so one storm batch commits as one ``put_many`` instead of
  splitting at every fence/delete/cas gap (per-key order untouched;
  only the cross-key FIFO interleaving — never promised by memcached
  — loosens, which is why the static modes stay strict).

Mode changes are **hysteretic**: enter and exit thresholds differ, and
after any switch the shard dwells for ``dwell_epochs`` evaluation
windows before it may switch again — a metric stream hovering exactly
on a threshold cannot oscillate (tests/test_adaptive_controller.py
pins this with deterministic streams). Every transition emits a
``commit_mode_switch`` trace span carrying the before/after knob
values and the window signals that justified it, and lands in
:attr:`CommitController.switch_log` stamped by the injectable clock.

History independence makes all of this safe: every mode commits the
same canonical DAG, so a mid-stream switch at a batch boundary is
invisible to state (the differential suite proves fingerprints,
footprints and refcounts identical across modes and mid-run switches).

The controller *always* samples, even when adaptation is off — the
``register_adaptive`` obs adapter exposes the raw inputs (per-shard
queue depth, CAS retries, merge-commit rate, batch RTT histogram)
under static modes too; only the retune step is gated on ``adaptive``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import NULL_RECORDER

__all__ = ["AdaptiveConfig", "BatchSample", "CommitController",
           "COMMIT_MODES", "RTT_BUCKETS_MS"]

#: The commit strategies a shard can run; ``"adaptive"`` at the router
#: level means "start at merge, let the controller move within these".
COMMIT_MODES = ("cas", "merge", "bulk")

#: Batch-RTT histogram bounds (milliseconds). Controller-owned because
#: the registry's Histogram is push-only; the adapter reads these as a
#: cumulative ``le``-labelled counter, Prometheus-style.
RTT_BUCKETS_MS = (0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)


@dataclass
class AdaptiveConfig:
    """Hysteresis policy knobs. Defaults are tuned on the phase-shift
    bench (`repro bench adaptive`); tests use tighter windows."""

    #: commit batches per evaluation window
    window: int = 4
    #: evaluation windows a shard must dwell after a switch
    dwell_epochs: int = 2
    #: write fraction (writes / ops) that enters / keeps bulk mode
    enter_bulk_write_frac: float = 0.55
    exit_bulk_write_frac: float = 0.35
    #: set fraction (sets / writes) at or below which the window is
    #: read-modify-write dominated and enters per-op CAS mode; the
    #: shard stays there until the set fraction recovers past the
    #: (higher) exit threshold — the gap stops threshold flapping
    enter_cas_set_frac: float = 0.35
    exit_cas_set_frac: float = 0.55
    #: duplicate-key fraction (dup set keys / sets) that prefers bulk
    #: over merge (merge staging must split at repeats; put_many
    #: absorbs them), with the matching lower exit threshold
    enter_dup_frac: float = 0.30
    exit_dup_frac: float = 0.12
    #: write fraction at or below which a window counts as idle
    idle_write_frac: float = 0.10
    #: storm-onset fast path: a single *full* commit batch that is
    #: almost all plain sets with backlog still queued behind it enters
    #: bulk immediately instead of waiting out the window — entry is
    #: cheap to get wrong (the next window corrects it) while every
    #: merge-mode batch spent inside a storm costs a commit per run
    #: split. Onset bypasses dwell; exits always take the full window
    #: + dwell, which bounds any enter/exit cycle to one per
    #: ``(dwell_epochs + 1) * window`` bulk batches. 0 disables. The
    #: default leaves room for delete/cas churn riding along a storm
    #: while staying far above any read-modify-write mix.
    storm_onset_set_frac: float = 0.60
    #: batch limit while in bulk (storm) mode
    storm_batch_limit: int = 48
    #: reclaim drain budget while in storm (bulk) mode. The default
    #: equals the router's base budget — i.e. **no deferral**: on the
    #: phase-shift bench, shrinking it buys the storm nothing once
    #: storm staging amortizes the commits, while the deferred backlog
    #: dribbles through whatever phase follows and costs far more than
    #: it saved. Lower it only for profiles whose storms are genuinely
    #: reclaim-bound and are followed by idle time
    storm_reclaim_budget: int = 512
    #: reclaim drain budget during idle windows (idle-time drains)
    idle_reclaim_budget: int = 4096
    #: storm-staging posture: while a shard is in (controller-entered)
    #: bulk mode, the router may resolve key-disjoint read fences early
    #: and commute key-disjoint non-set writes around a staged run, so
    #: a storm batch commits as one ``put_many`` instead of splitting
    #: at every fence/delete/cas gap. Off for static modes: it trades
    #: cross-key FIFO interleaving (legal for memcached, but the
    #: conservative default) and set-response latency (a hopped-over
    #: set resolves with the whole widened run) for commit
    #: amortization — exactly the trade you only want while a storm
    #: is actually landing
    hop_reads: bool = True
    #: test/fuzz hook: force a rotation to the next available mode
    #: every N batches, ignoring thresholds and dwell (0 = off)
    rotate_every: int = 0

    def validate(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.dwell_epochs < 0:
            raise ValueError("dwell_epochs must be >= 0")
        if self.exit_bulk_write_frac > self.enter_bulk_write_frac:
            raise ValueError("bulk exit threshold above enter threshold")
        if self.exit_cas_set_frac < self.enter_cas_set_frac:
            raise ValueError("cas exit threshold below enter threshold")
        if self.exit_dup_frac > self.enter_dup_frac:
            raise ValueError("dup exit threshold above enter threshold")


@dataclass
class BatchSample:
    """One commit batch as the router saw it (fed to ``observe_batch``)."""

    writes: int = 0          #: write frames applied (fences excluded)
    sets: int = 0            #: plain ``set`` frames among the writes
    dup_sets: int = 0        #: sets whose key repeated within the batch
    cas_retries: int = 0     #: true-conflict retries this batch
    merge_commits: int = 0   #: lost CASes absorbed by merge-update
    queue_depth: int = 0     #: shard queue depth after the drain
    rtt_s: float = 0.0       #: wall time to apply the batch (seconds)
    reclaim_pending: int = 0  #: deferred reclaim lines after the drain


class _ShardLens(object):
    """Per-shard controller state: knobs, window accumulators, totals."""

    __slots__ = ("mode", "batch_limit", "reclaim_budget", "dwell",
                 "batches", "epochs", "switches", "last_signals",
                 "w_batches", "w_writes", "w_reads", "w_sets", "w_dups",
                 "w_retries", "w_merges", "w_depth_max", "w_rtt_s",
                 "w_pending",
                 "writes", "reads", "sets", "dup_sets", "cas_retries",
                 "merge_commits", "rtt_sum_ms", "queue_depth",
                 "rtt_buckets")

    def __init__(self, mode: str, batch_limit: int,
                 reclaim_budget: int) -> None:
        self.mode = mode
        self.batch_limit = batch_limit
        self.reclaim_budget = reclaim_budget
        self.dwell = 0
        self.batches = 0
        self.epochs = 0
        self.switches = 0
        self.last_signals: Dict[str, float] = {}
        self.w_batches = 0
        self.w_writes = 0
        self.w_reads = 0
        self.w_sets = 0
        self.w_dups = 0
        self.w_retries = 0
        self.w_merges = 0
        self.w_depth_max = 0
        self.w_rtt_s = 0.0
        self.w_pending = 0
        self.writes = 0
        self.reads = 0
        self.sets = 0
        self.dup_sets = 0
        self.cas_retries = 0
        self.merge_commits = 0
        self.rtt_sum_ms = 0.0
        self.queue_depth = 0
        self.rtt_buckets = [0] * (len(RTT_BUCKETS_MS) + 1)


class CommitController:
    """Per-shard online commit-strategy switching with hysteresis.

    ``adaptive=False`` turns the controller into a pure observer: it
    still accumulates the raw inputs the obs adapter exports, but every
    shard keeps the startup mode and knobs forever. Capability flags
    (``merge_ok``: all backends are plain ``HicampMemcached``;
    ``bulk_ok``: all backends are ``BULK_SAFE``) bound what the policy
    may pick — a target the backends can't serve degrades bulk→merge→cas
    exactly like the router's static validation would.
    """

    def __init__(self, shard_count: int, mode: str = "merge", *,
                 adaptive: bool = False,
                 batch_limit: int = 16,
                 reclaim_budget: int = 512,
                 merge_ok: bool = True,
                 bulk_ok: bool = True,
                 config: Optional[AdaptiveConfig] = None,
                 recorder=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if mode not in COMMIT_MODES:
            raise ValueError("initial mode must be one of %r"
                             % (COMMIT_MODES,))
        self.config = config if config is not None else AdaptiveConfig()
        self.config.validate()
        self.adaptive = adaptive
        self.merge_ok = merge_ok
        self.bulk_ok = bulk_ok
        self.base_batch_limit = max(1, batch_limit)
        self.base_reclaim_budget = max(1, reclaim_budget)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.clock = clock
        mode = self._cap(mode)
        self.shards = [_ShardLens(mode, self.base_batch_limit,
                                  self.base_reclaim_budget)
                       for _ in range(shard_count)]
        #: every transition, in order: dicts with t/shard/from/to/reason
        #: plus the window signals that justified it
        self.switch_log: List[Dict] = []

    # ------------------------------------------------------------------
    # knobs the router reads at batch boundaries

    def mode(self, shard: int) -> str:
        """Commit mode the next batch on ``shard`` should use."""
        return self.shards[shard].mode

    def batch_limit(self, shard: int) -> int:
        """Queue-drain coalescing limit for ``shard``'s next batch."""
        return self.shards[shard].batch_limit

    def reclaim_budget(self, shard: int) -> int:
        """Epoch drain budget to spend after ``shard``'s next batch."""
        return self.shards[shard].reclaim_budget

    def hop_reads(self, shard: int) -> bool:
        """Whether ``shard``'s next bulk batch runs the storm-staging
        posture: key-disjoint fences resolve early and key-disjoint
        non-set writes commute around the staged run instead of
        splitting it. Controller-entered bulk mode only — the static
        modes keep the conservative strict-FIFO run building."""
        return (self.adaptive and self.config.hop_reads
                and self.shards[shard].mode == "bulk")

    # ------------------------------------------------------------------
    # sampling

    def note_read(self, shard: int) -> None:
        """One inline snapshot read served on ``shard`` (cheap tick)."""
        lens = self.shards[shard]
        lens.w_reads += 1
        lens.reads += 1

    def observe_batch(self, shard: int, sample: BatchSample) -> None:
        """Fold one applied commit batch into ``shard``'s window and,
        when the window closes (every ``config.window`` batches) and
        adaptation is on, re-decide the shard's knobs."""
        lens = self.shards[shard]
        cfg = self.config
        lens.batches += 1
        lens.w_batches += 1
        lens.w_writes += sample.writes
        lens.w_sets += sample.sets
        lens.w_dups += sample.dup_sets
        lens.w_retries += sample.cas_retries
        lens.w_merges += sample.merge_commits
        if sample.queue_depth > lens.w_depth_max:
            lens.w_depth_max = sample.queue_depth
        lens.w_rtt_s += sample.rtt_s
        lens.w_pending = sample.reclaim_pending
        lens.writes += sample.writes
        lens.sets += sample.sets
        lens.dup_sets += sample.dup_sets
        lens.cas_retries += sample.cas_retries
        lens.merge_commits += sample.merge_commits
        lens.rtt_sum_ms += sample.rtt_s * 1e3
        lens.queue_depth = sample.queue_depth
        rtt_ms = sample.rtt_s * 1e3
        for i, bound in enumerate(RTT_BUCKETS_MS):
            if rtt_ms <= bound:
                lens.rtt_buckets[i] += 1
                break
        else:
            lens.rtt_buckets[-1] += 1
        if (self.adaptive and cfg.rotate_every
                and lens.batches % cfg.rotate_every == 0):
            # forced rotation (fuzz hook): exercise every transition
            # under faults regardless of what the traffic looks like
            avail = [m for m in COMMIT_MODES if self._cap(m) == m]
            nxt = avail[(avail.index(lens.mode) + 1) % len(avail)]
            self._apply(shard, lens, nxt, "rotate",
                        self._signals(lens))
            self._reset_window(lens)
            return
        if (self.adaptive and self.bulk_ok and lens.mode != "bulk"
                and cfg.storm_onset_set_frac
                and sample.queue_depth > 0
                and sample.writes >= int(0.8 * lens.batch_limit)
                and sample.sets
                >= cfg.storm_onset_set_frac * sample.writes):
            # storm onset: full all-set batch with a backlog behind it
            self._apply(shard, lens, "bulk", "storm-onset",
                        self._signals(lens))
            self._reset_window(lens)
            return
        if lens.w_batches < cfg.window:
            return
        signals = self._signals(lens)
        lens.last_signals = signals
        lens.epochs += 1
        self._reset_window(lens)
        if not self.adaptive:
            return
        if lens.dwell > 0:
            lens.dwell -= 1
            return
        self._apply(shard, lens, self._target(lens.mode, signals),
                    "policy", signals)

    def force_mode(self, shard: int, mode: str) -> None:
        """Test hook: switch ``shard`` now (capability-degraded),
        emitting the same span/log a policy switch would."""
        if mode not in COMMIT_MODES:
            raise ValueError("mode must be one of %r" % (COMMIT_MODES,))
        lens = self.shards[shard]
        self._apply(shard, lens, self._cap(mode), "forced",
                    self._signals(lens))

    # ------------------------------------------------------------------
    # policy

    def _cap(self, mode: str) -> str:
        """Degrade a target mode to what the backends can serve."""
        if mode == "bulk" and not self.bulk_ok:
            mode = "merge"
        if mode == "merge" and not self.merge_ok:
            mode = "cas"
        return mode

    def _target(self, mode: str, signals: Dict[str, float]) -> str:
        """Hysteresis ladder: RMW traffic beats storms beats hot keys
        beats the merge default."""
        cfg = self.config
        set_frac = signals["set_frac"]
        dup = signals["dup_frac"]
        wf = signals["write_frac"]
        # read-modify-write dominated: cas/delete/counter frames never
        # join a run, so batching machinery buys nothing per-op CAS
        # wouldn't — and skips the run-building attempt per frame
        if signals["writes"] and set_frac <= cfg.enter_cas_set_frac:
            return "cas"
        if mode == "cas" and set_frac < cfg.exit_cas_set_frac:
            return "cas"
        if self.bulk_ok:
            if wf >= cfg.enter_bulk_write_frac:
                return "bulk"
            if mode == "bulk" and wf >= cfg.exit_bulk_write_frac:
                return "bulk"
            # hot-key sets: merge staging splits at repeated keys
            # (true conflicts), put_many absorbs them last-wins
            if dup >= cfg.enter_dup_frac:
                return "bulk"
            if mode == "bulk" and dup > cfg.exit_dup_frac:
                return "bulk"
        return self._cap("merge")

    def _apply(self, shard: int, lens: _ShardLens, target: str,
               reason: str, signals: Dict[str, float]) -> None:
        """Apply a (possibly unchanged) target mode plus knob retune."""
        cfg = self.config
        old_mode = lens.mode
        old_limit, old_budget = lens.batch_limit, lens.reclaim_budget
        new_limit = (max(self.base_batch_limit, cfg.storm_batch_limit)
                     if target == "bulk" else self.base_batch_limit)
        # drain budget is decided by traffic, not by mode: defer the
        # subtree walks while a storm is landing, catch up hard only
        # once the shard goes read-mostly idle. (Catching up during a
        # merely *non-storm* busy window measures worse than dribbling
        # at the base rate — the burst walks land on the critical
        # path.) Deferred lines stay accounted in the epoch pending
        # list either way — this only moves *when* they are walked
        # (and drain() at shutdown always finishes the job).
        if (signals.get("write_frac", 1.0) <= cfg.idle_write_frac
                and signals.get("queue_depth_max", 1) == 0):
            new_budget = max(self.base_reclaim_budget,
                             cfg.idle_reclaim_budget)
        elif target == "bulk":
            new_budget = min(self.base_reclaim_budget,
                             cfg.storm_reclaim_budget)
        else:
            new_budget = self.base_reclaim_budget
        if target != old_mode:
            recorder = self.recorder
            span = None
            if recorder.enabled:
                span = recorder.begin(
                    "commit_mode_switch", shard=shard, reason=reason,
                    from_mode=old_mode, to_mode=target,
                    batch_limit=old_limit, reclaim_budget=old_budget,
                    **signals)
            lens.mode = target
            lens.switches += 1
            lens.dwell = cfg.dwell_epochs
            self.switch_log.append({
                "t": round(self.clock(), 6), "shard": shard,
                "from": old_mode, "to": target, "reason": reason,
                "signals": signals,
            })
            if span is not None:
                recorder.end(span, new_batch_limit=new_limit,
                             new_reclaim_budget=new_budget)
        lens.batch_limit = new_limit
        lens.reclaim_budget = new_budget

    # ------------------------------------------------------------------
    # window helpers

    @staticmethod
    def _reset_window(lens: _ShardLens) -> None:
        lens.w_batches = 0
        lens.w_writes = 0
        lens.w_reads = 0
        lens.w_sets = 0
        lens.w_dups = 0
        lens.w_retries = 0
        lens.w_merges = 0
        lens.w_depth_max = 0
        lens.w_rtt_s = 0.0

    @staticmethod
    def _signals(lens: _ShardLens) -> Dict[str, float]:
        ops = lens.w_writes + lens.w_reads
        signals = {
            "batches": lens.w_batches,
            "writes": lens.w_writes,
            "reads": lens.w_reads,
            "write_frac": round(lens.w_writes / max(1, ops), 4),
            "set_frac": round(lens.w_sets / max(1, lens.w_writes), 4),
            "dup_frac": round(lens.w_dups / max(1, lens.w_sets), 4),
            "cas_retries": lens.w_retries,
            "merge_commits": lens.w_merges,
            "queue_depth_max": lens.w_depth_max,
            "reclaim_pending": lens.w_pending,
            "batch_rtt_ms": round(
                lens.w_rtt_s * 1e3 / max(1, lens.w_batches), 4),
        }
        return signals

    # ------------------------------------------------------------------
    # export (obs adapter + router snapshot)

    def switches_total(self) -> int:
        return sum(lens.switches for lens in self.shards)

    def per_shard(self, attr: str) -> Dict[str, float]:
        """``{shard label: value}`` for a lens attribute (adapter fn)."""
        return {str(i): getattr(lens, attr)
                for i, lens in enumerate(self.shards)}

    def mode_counts(self) -> Dict[Tuple[str, str], int]:
        """``{(shard, mode): 0|1}`` — Prometheus-style mode info."""
        out: Dict[Tuple[str, str], int] = {}
        for i, lens in enumerate(self.shards):
            for mode in COMMIT_MODES:
                out[(str(i), mode)] = 1 if lens.mode == mode else 0
        return out

    def rtt_bucket_counts(self) -> Dict[Tuple[str, str], int]:
        """Cumulative ``{(shard, le): count}`` batch-RTT histogram."""
        out: Dict[Tuple[str, str], int] = {}
        for i, lens in enumerate(self.shards):
            running = 0
            bounds = [str(b) for b in RTT_BUCKETS_MS] + ["+Inf"]
            for bound, count in zip(bounds, lens.rtt_buckets):
                running += count
                out[(str(i), bound)] = running
        return out

    def snapshot(self) -> Dict:
        """JSON-safe controller state for ``stats json`` and benches."""
        return {
            "enabled": bool(self.adaptive),
            "base_batch_limit": self.base_batch_limit,
            "base_reclaim_budget": self.base_reclaim_budget,
            "switches_total": self.switches_total(),
            "shards": [{
                "mode": lens.mode,
                "batch_limit": lens.batch_limit,
                "reclaim_budget": lens.reclaim_budget,
                "batches": lens.batches,
                "epochs": lens.epochs,
                "switches": lens.switches,
                "queue_depth": lens.queue_depth,
                "writes": lens.writes,
                "reads": lens.reads,
                "dup_sets": lens.dup_sets,
                "cas_retries": lens.cas_retries,
                "merge_commits": lens.merge_commits,
                "batch_rtt_ms_avg": round(
                    lens.rtt_sum_ms / max(1, lens.batches), 4),
                "signals": dict(lens.last_signals),
            } for lens in self.shards],
        }
