"""Streaming frame decoding for the memcached ASCII protocol.

A TCP stream has no request boundaries: one ``read()`` can return half a
request, exactly one, or a dozen pipelined ones — and a storage command's
data block can itself be split anywhere, including inside its payload's
``\\r\\n`` terminator. :func:`repro.apps.memcached.protocol.parse_request`
assumes one complete request per buffer; :class:`FrameDecoder` removes
that assumption. Feed it raw socket bytes and it yields complete
:class:`Frame` objects, buffering any trailing partial request::

    decoder = FrameDecoder()
    decoder.feed(b"get a\r\nset b 0 0 5\r\nhel")   # -> [Frame(get a)]
    decoder.feed(b"lo\r\n")                        # -> [Frame(set b)]

Malformed input (bad byte counts, oversized declarations, absurdly long
request lines) becomes an error :class:`Frame` rather than an exception,
so the serving layer can answer ``CLIENT_ERROR`` and keep the connection
alive — exactly what real memcached does.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.apps.memcached.protocol import (
    CRLF,
    IncompleteRequestError,
    ProtocolError,
    parse_frame,
)

#: Longest accepted request line (real memcached: 2048; generous here).
MAX_LINE_BYTES = 8192


@dataclass
class Frame:
    """One complete request as it appeared on the wire."""

    raw: bytes
    command: bytes = b""
    args: List[bytes] = field(default_factory=list)
    payload: Optional[bytes] = None
    error: Optional[str] = None

    @property
    def key(self) -> Optional[bytes]:
        """First argument — the key for every single-key command."""
        return self.args[0] if self.args else None


class FrameDecoder:
    """Incremental splitter of a byte stream into protocol frames."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered while waiting for the rest of a request."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every request it completed."""
        self._buf += data
        frames: List[Frame] = []
        while self._buf:
            try:
                command, args, payload, consumed = parse_frame(
                    bytes(self._buf))
            except IncompleteRequestError:
                if CRLF not in self._buf and len(self._buf) > MAX_LINE_BYTES:
                    # unterminated garbage: drop it or the buffer grows
                    # without bound on a hostile/broken client
                    frames.append(Frame(raw=bytes(self._buf),
                                        error="request line too long"))
                    self._buf.clear()
                break
            except ProtocolError as exc:
                # resync: the parser may know exactly how many bytes the
                # malformed request occupied (request line plus its data
                # block); otherwise skip just the offending line. Either
                # way, what follows is re-examined as the next request
                # (memcached behaves the same: CLIENT_ERROR, then the
                # stream continues)
                skip = getattr(exc, "resync_bytes", 0)
                if 0 < skip <= len(self._buf):
                    frames.append(Frame(raw=bytes(self._buf[:skip]),
                                        error=str(exc)))
                    del self._buf[:skip]
                else:
                    line, _, rest = bytes(self._buf).partition(CRLF)
                    frames.append(Frame(raw=line + CRLF, error=str(exc)))
                    self._buf = bytearray(rest)
                continue
            frames.append(Frame(raw=bytes(self._buf[:consumed]),
                                command=command, args=args, payload=payload))
            del self._buf[:consumed]
        return frames


class FrameTooLargeError(Exception):
    """A length-prefixed frame declared a payload above the cap."""


class LengthPrefixedDecoder:
    """Incremental splitter for binary length-prefixed frames.

    The memcached-text :class:`FrameDecoder` above finds boundaries by
    parsing; binary protocols (the replication wire format) instead
    declare them: every frame is ``!BI`` — a one-byte frame type and a
    four-byte payload length — followed by the payload. This decoder is
    the generic reassembly half, shared so any future binary protocol
    gets the same split-read handling the fault injector exercises.

    ``max_payload`` bounds memory on a hostile or corrupted stream; an
    oversized declaration raises :class:`FrameTooLargeError` (a framing
    desynchronization is unrecoverable, unlike a malformed text request,
    so the connection must be dropped).
    """

    HEADER = struct.Struct("!BI")

    def __init__(self, max_payload: int = 1 << 24) -> None:
        self.max_payload = max_payload
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered while waiting for the rest of a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Absorb ``data``; return completed ``(frame_type, payload)``."""
        self._buf += data
        frames: List[Tuple[int, bytes]] = []
        while len(self._buf) >= self.HEADER.size:
            ftype, length = self.HEADER.unpack_from(self._buf)
            if length > self.max_payload:
                raise FrameTooLargeError(
                    "frame type %d declares %d payload bytes (cap %d)"
                    % (ftype, length, self.max_payload))
            end = self.HEADER.size + length
            if len(self._buf) < end:
                break
            frames.append((ftype, bytes(self._buf[self.HEADER.size:end])))
            del self._buf[:end]
        return frames


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One length-prefixed frame as wire bytes (inverse of the decoder)."""
    return LengthPrefixedDecoder.HEADER.pack(ftype, len(payload)) + payload
