"""Asyncio load generator for the serving layer.

``run_loadgen`` opens N concurrent TCP connections and drives pipelined
``get``/``set``/``cas`` traffic against a memcached-speaking server,
verifying as it goes:

* each client owns a **private keyspace** where it is the only writer —
  a sequential oracle (key → last value set) must match exactly what a
  pipelined read-back returns at the end of the run;
* all clients contend on a **shared keyspace** through ``gets``/``cas``
  — optimistic concurrency where losing is legal (``EXISTS``), but the
  final value of every shared key must be one some client actually
  committed;
* every batch is written in one syscall, so the server sees genuinely
  pipelined frames (its decoder and batching merge-commit path are
  exercised, not just its happy path).

The :class:`LoadgenReport` mirrors the server's metrics block from the
client side: ops/s, batch-RTT percentiles, hit/miss and CAS outcomes.

Fleet mode: the generator can drive **multiple endpoints** through a
routing policy — writes to a writer endpoint, plain ``get`` traffic
spread across read replicas (:class:`ReadSplitPolicy`, or the cluster
tier's topology-aware policy). Replica reads are snapshot reads that may
lag the writer, so the oracle check relaxes to *write-history*
membership: a returned value must be something this client actually
wrote (stale-but-legal is counted separately as ``stale_reads``, and the
final read-back always goes to the writer, strictly). The default
single-endpoint path is unchanged, byte for byte, report for report.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.metrics import latency_summary

CRLF = b"\r\n"


@dataclass
class LoadgenReport:
    """Client-side view of one load-generation run."""

    clients: int = 0
    ops: int = 0
    wall_seconds: float = 0.0
    stored: int = 0
    get_hits: int = 0
    get_misses: int = 0
    cas_stored: int = 0
    cas_conflicts: int = 0
    errors: int = 0
    oracle_checked: int = 0
    oracle_mismatches: int = 0
    shared_checked: int = 0
    shared_mismatches: int = 0
    #: replica reads that returned an older-but-legal value (fleet mode)
    stale_reads: int = 0
    #: endpoints driven (1 = classic single-server mode)
    endpoints: int = 1
    batch_rtts_ms: List[float] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        return self.ops / max(1e-9, self.wall_seconds)

    @property
    def consistent(self) -> bool:
        """True when every check against the oracle passed."""
        return self.oracle_mismatches == 0 and self.shared_mismatches == 0

    def latency(self) -> Dict[str, float]:
        return latency_summary(self.batch_rtts_ms)

    def as_dict(self) -> Dict:
        """JSON-safe summary."""
        out = {
            "clients": self.clients,
            "ops": self.ops,
            "wall_seconds": round(self.wall_seconds, 3),
            "ops_per_second": round(self.ops_per_second, 1),
            "stored": self.stored,
            "get_hits": self.get_hits,
            "get_misses": self.get_misses,
            "cas_stored": self.cas_stored,
            "cas_conflicts": self.cas_conflicts,
            "errors": self.errors,
            "oracle_checked": self.oracle_checked,
            "oracle_mismatches": self.oracle_mismatches,
            "shared_checked": self.shared_checked,
            "shared_mismatches": self.shared_mismatches,
            "batch_rtt": self.latency(),
        }
        if self.endpoints > 1:
            # fleet mode only — the single-endpoint JSON stays
            # byte-compatible with every report ever written
            out["endpoints"] = self.endpoints
            out["stale_reads"] = self.stale_reads
        return out


# ----------------------------------------------------------------------
# wire helpers


async def read_line_response(reader: asyncio.StreamReader) -> bytes:
    """One single-line response (STORED, DELETED, counters, errors)."""
    return await reader.readline()


async def read_value_response(
        reader: asyncio.StreamReader
) -> Dict[bytes, Tuple[bytes, bytes]]:
    """A get/gets response: key → (value, cas token or b"")."""
    values: Dict[bytes, Tuple[bytes, bytes]] = {}
    while True:
        line = await reader.readline()
        if line == b"END" + CRLF:
            return values
        if not line.startswith(b"VALUE "):
            raise ValueError("unexpected line in value response: %r" % line)
        parts = line.split()
        key, nbytes = parts[1], int(parts[3])
        token = parts[4] if len(parts) > 4 else b""
        block = await reader.readexactly(nbytes + len(CRLF))
        values[key] = (block[:-len(CRLF)], token)


def set_request(key: bytes, value: bytes) -> bytes:
    return b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value)


# ----------------------------------------------------------------------
# routing policies (fleet mode)


class SingleEndpointPolicy:
    """Everything to endpoint 0 — the classic single-server path."""

    #: strict oracle: every read must return the last written value
    relaxed_reads = False

    def write_endpoint(self, key: bytes) -> int:
        return 0

    def read_endpoint(self, key: bytes) -> int:
        return 0


class ReadSplitPolicy:
    """One writer endpoint; plain reads round-robin the replicas.

    ``gets`` (CAS-token acquisition) counts as part of a
    read-modify-write cycle and goes to the writer — a token learned
    from a lagging replica would just burn a legal-but-useless CAS
    conflict.
    """

    relaxed_reads = True

    def __init__(self, writer: int = 0,
                 readers: Optional[List[int]] = None) -> None:
        self.writer = writer
        self.readers = list(readers) if readers else [writer]
        self._rr = 0

    def write_endpoint(self, key: bytes) -> int:
        return self.writer

    def read_endpoint(self, key: bytes) -> int:
        endpoint = self.readers[self._rr % len(self.readers)]
        self._rr += 1
        return endpoint


# ----------------------------------------------------------------------
# one client


class LoadgenClient:
    """One connection's worth of pipelined mixed traffic."""

    def __init__(self, cid: int, host: str, port: int, ops: int,
                 pipeline_depth: int, get_ratio: float, key_space: int,
                 value_bytes: int, seed: int,
                 clock: Callable[[], float] = time.monotonic,
                 endpoints: Optional[List[Tuple[str, int]]] = None,
                 policy=None) -> None:
        self.cid = cid
        self.host, self.port = host, port
        #: (host, port) per endpoint index; the policy routes into this
        self.endpoints = list(endpoints) if endpoints else [(host, port)]
        self.policy = policy if policy is not None \
            else SingleEndpointPolicy()
        #: injectable time source (same discipline as ServerMetrics.clock)
        #: so RTT measurements are deterministic under a testing clock
        self.clock = clock
        self.ops = ops
        self.pipeline_depth = max(1, pipeline_depth)
        self.get_ratio = get_ratio
        self.key_space = key_space
        self.value_bytes = value_bytes
        self.rng = random.Random((seed << 16) | cid)
        self.oracle: Dict[bytes, bytes] = {}
        #: every value this client ever stored per key — the legal set
        #: for relaxed (replica-lag-aware) read checking
        self.history: Dict[bytes, Set[bytes]] = {}
        self.shared_committed: Dict[bytes, Set[bytes]] = {}
        self.report = LoadgenReport(clients=1,
                                    endpoints=len(self.endpoints))
        self._seq = 0
        self._cas_tokens: Dict[bytes, bytes] = {}
        self._cas_values: Dict[Tuple[bytes, bytes], bytes] = {}

    def _private_key(self) -> bytes:
        return b"c%d:k%02d" % (self.cid, self.rng.randrange(self.key_space))

    def _shared_key(self) -> bytes:
        return b"shared:k%02d" % self.rng.randrange(self.key_space)

    def _fresh_value(self) -> bytes:
        self._seq += 1
        return (b"v%d.%d." % (self.cid, self._seq)).ljust(
            self.value_bytes, b"x")

    def _plan_batch(self, budget: int) -> List[Tuple[str, bytes, bytes]]:
        """(kind, key, value) triples for one pipelined batch."""
        batch = []
        # any CAS token learned in the previous batch gets used first
        while self._cas_tokens and len(batch) < budget:
            key, token = self._cas_tokens.popitem()
            batch.append(("cas", key, token))
        while len(batch) < budget:
            roll = self.rng.random()
            if roll < self.get_ratio:
                key = (self._shared_key() if self.rng.random() < 0.3
                       else self._private_key())
                batch.append(("get", key, b""))
            elif roll < self.get_ratio + (1 - self.get_ratio) * 0.7:
                batch.append(("set", self._private_key(),
                              self._fresh_value()))
            else:
                batch.append(("gets", self._shared_key(), b""))
        return batch

    def _encode(self, batch) -> bytes:
        out = []
        for kind, key, extra in batch:
            if kind == "set":
                out.append(set_request(key, extra))
            elif kind == "cas":
                value = self._fresh_value()
                out.append(b"cas %s 0 0 %d %s\r\n%s\r\n"
                           % (key, len(value), extra, value))
                self._cas_values[(key, extra)] = value
            else:  # get / gets
                out.append(b"%s %s\r\n" % (kind.encode(), key))
        return b"".join(out)

    def _route(self, kind: str, key: bytes) -> int:
        """Endpoint index for one op: only plain reads go to replicas."""
        if kind == "get":
            return self.policy.read_endpoint(key)
        return self.policy.write_endpoint(key)

    async def run(self) -> LoadgenReport:
        conns = [await asyncio.open_connection(host, port)
                 for host, port in self.endpoints]
        report = self.report
        issued = 0
        try:
            while issued < self.ops:
                batch = self._plan_batch(min(self.pipeline_depth,
                                             self.ops - issued))
                # route, then group per endpoint preserving op order —
                # the single-endpoint case degenerates to the original
                # one-buffer-one-syscall pipeline, byte for byte
                grouped: Dict[int, List] = {}
                for op in batch:
                    grouped.setdefault(self._route(op[0], op[1]),
                                       []).append(op)
                started = self.clock()
                for endpoint in sorted(grouped):
                    conns[endpoint][1].write(self._encode(
                        grouped[endpoint]))
                for endpoint in sorted(grouped):
                    await conns[endpoint][1].drain()
                for endpoint in sorted(grouped):
                    for kind, key, extra in grouped[endpoint]:
                        await self._consume(conns[endpoint][0], kind,
                                            key, extra)
                report.batch_rtts_ms.append(
                    (self.clock() - started) * 1000.0)
                issued += len(batch)
                report.ops += len(batch)
            await self._verify_private(conns)
            for _, writer in conns:
                writer.write(b"quit\r\n")
                await writer.drain()
        finally:
            for _, writer in conns:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass
        return report

    async def _consume(self, reader, kind: str, key: bytes,
                       extra: bytes) -> None:
        report = self.report
        if kind in ("get", "gets"):
            values = await read_value_response(reader)
            if key in values:
                report.get_hits += 1
                if kind == "gets":
                    self._cas_tokens[key] = values[key][1]
                if key in self.oracle:
                    report.oracle_checked += 1
                    value = values[key][0]
                    if value == self.oracle[key]:
                        pass
                    elif self.policy.relaxed_reads \
                            and value in self.history.get(key, ()):
                        # a lagging replica returned an older value this
                        # client really wrote: legal, and counted
                        report.stale_reads += 1
                    else:
                        report.oracle_mismatches += 1
            else:
                report.get_misses += 1
            return
        line = await read_line_response(reader)
        if kind == "set":
            if line == b"STORED" + CRLF:
                report.stored += 1
                self.oracle[key] = extra
                self.history.setdefault(key, set()).add(extra)
            else:
                report.errors += 1
        elif kind == "cas":
            value = self._cas_values.pop((key, extra), None)
            if line == b"STORED" + CRLF:
                report.cas_stored += 1
                if value is not None:
                    self.shared_committed.setdefault(key, set()).add(value)
            elif line in (b"EXISTS" + CRLF, b"NOT_FOUND" + CRLF):
                report.cas_conflicts += 1
            else:
                report.errors += 1

    async def _verify_private(self, conns) -> None:
        """Pipelined read-back of every private key against the oracle.

        Always strict, always against the **write** endpoint — replica
        lag never excuses the authoritative copy from matching the
        oracle exactly.
        """
        keys = sorted(self.oracle)
        if not keys:
            return
        grouped: Dict[int, List[bytes]] = {}
        for key in keys:
            grouped.setdefault(self.policy.write_endpoint(key),
                               []).append(key)
        for endpoint in sorted(grouped):
            reader, writer = conns[endpoint]
            writer.write(b"".join(b"get %s\r\n" % key
                                  for key in grouped[endpoint]))
            await writer.drain()
            for key in grouped[endpoint]:
                values = await read_value_response(reader)
                self.report.oracle_checked += 1
                if key not in values or values[key][0] != self.oracle[key]:
                    self.report.oracle_mismatches += 1


# ----------------------------------------------------------------------
# the fleet


async def run_loadgen(host: str, port: int, clients: int = 4,
                      ops_per_client: int = 100, pipeline_depth: int = 8,
                      get_ratio: float = 0.5, key_space: int = 16,
                      value_bytes: int = 32, seed: int = 0,
                      clock: Callable[[], float] = time.monotonic,
                      endpoints: Optional[List[Tuple[str, int]]] = None,
                      policy_factory: Optional[Callable[[], object]] = None
                      ) -> LoadgenReport:
    """Drive ``clients`` concurrent pipelined connections; verify results.

    Fleet mode: pass ``endpoints`` (a list of ``(host, port)``; index 0
    is the default) and a ``policy_factory`` building one routing policy
    per client — each client needs its own (policies carry round-robin
    state). Seeding and the final shared-keyspace verification always go
    through each key's *write* endpoint.
    """
    endpoints = list(endpoints) if endpoints else [(host, port)]
    make_policy = policy_factory if policy_factory is not None \
        else SingleEndpointPolicy
    route = make_policy()  # for the seed/verify phases

    # group the shared keys by their write endpoint once; seeding and
    # final verification reuse the same grouping (and connections)
    shared_by_endpoint: Dict[int, List[bytes]] = {}
    for j in range(key_space):
        key = b"shared:k%02d" % j
        shared_by_endpoint.setdefault(route.write_endpoint(key),
                                      []).append(key)
    conns = {}
    for endpoint in sorted(shared_by_endpoint):
        conns[endpoint] = await asyncio.open_connection(
            *endpoints[endpoint])
    # seed the shared keyspace so gets/cas have something to race on
    for endpoint, keys in sorted(shared_by_endpoint.items()):
        reader, writer = conns[endpoint]
        for key in keys:
            writer.write(set_request(key, b"seed"))
        await writer.drain()
        for _ in keys:
            await read_line_response(reader)

    fleet = [LoadgenClient(cid, host, port, ops_per_client, pipeline_depth,
                           get_ratio, key_space, value_bytes, seed,
                           clock=clock, endpoints=endpoints,
                           policy=make_policy())
             for cid in range(clients)]
    started = clock()
    reports = await asyncio.gather(*(client.run() for client in fleet))
    wall = clock() - started

    total = LoadgenReport(clients=clients, wall_seconds=wall,
                          endpoints=len(endpoints))
    committed: Dict[bytes, Set[bytes]] = {}
    for client, report in zip(fleet, reports):
        for name in ("ops", "stored", "get_hits", "get_misses", "cas_stored",
                     "cas_conflicts", "errors", "oracle_checked",
                     "oracle_mismatches", "stale_reads"):
            setattr(total, name, getattr(total, name) + getattr(report, name))
        total.batch_rtts_ms.extend(report.batch_rtts_ms)
        for key, values in client.shared_committed.items():
            committed.setdefault(key, set()).update(values)

    # shared keys: the surviving value must be one somebody committed —
    # read from the write endpoint, where the answer is authoritative
    for endpoint, keys in sorted(shared_by_endpoint.items()):
        reader, writer = conns[endpoint]
        for key in keys:
            writer.write(b"get %s\r\n" % key)
        await writer.drain()
        for key in keys:
            values = await read_value_response(reader)
            total.shared_checked += 1
            legal = committed.get(key, set()) | {b"seed"}
            if key not in values or values[key][0] not in legal:
                total.shared_mismatches += 1
    for reader, writer in conns.values():
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return total
