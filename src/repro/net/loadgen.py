"""Asyncio load generator for the serving layer.

``run_loadgen`` opens N concurrent TCP connections and drives pipelined
``get``/``set``/``cas`` traffic against a memcached-speaking server,
verifying as it goes:

* each client owns a **private keyspace** where it is the only writer —
  a sequential oracle (key → last value set) must match exactly what a
  pipelined read-back returns at the end of the run;
* all clients contend on a **shared keyspace** through ``gets``/``cas``
  — optimistic concurrency where losing is legal (``EXISTS``), but the
  final value of every shared key must be one some client actually
  committed;
* every batch is written in one syscall, so the server sees genuinely
  pipelined frames (its decoder and batching merge-commit path are
  exercised, not just its happy path).

The :class:`LoadgenReport` mirrors the server's metrics block from the
client side: ops/s, batch-RTT percentiles, hit/miss and CAS outcomes.

Fleet mode: the generator can drive **multiple endpoints** through a
routing policy — writes to a writer endpoint, plain ``get`` traffic
spread across read replicas (:class:`ReadSplitPolicy`, or the cluster
tier's topology-aware policy). Replica reads are snapshot reads that may
lag the writer, so the oracle check relaxes to *write-history*
membership: a returned value must be something this client actually
wrote (stale-but-legal is counted separately as ``stale_reads``, and the
final read-back always goes to the writer, strictly). The default
single-endpoint path is unchanged, byte for byte, report for report.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.metrics import latency_summary

CRLF = b"\r\n"


# ----------------------------------------------------------------------
# phase-shifting profiles


@dataclass
class PhaseSpec:
    """One phase of a shifting workload (``--phases`` / bench profiles).

    ``ops`` is this phase's per-client budget (0 = an even split of the
    run's total). ``skew`` > 0 concentrates key choice toward low
    indices — key ``i`` is drawn with the density of ``u**(1+skew)``
    mapped onto the keyspace, so ``skew=3`` sends roughly a third of
    all traffic to each client's hottest key. ``set_bias`` is the
    fraction of non-``get`` rolls that become ``set`` (the remainder
    turn into the ``gets``/``cas`` optimistic cycle); the classic mix
    is 0.7. ``del_ratio`` carves a slice of all ops into ``delete``
    churn — deletes free whole value subtrees for a near-zero op cost,
    which is what makes storm-phase reclaim pressure realistic.
    ``value_bytes`` = 0 inherits the run's value size. ``entropy``
    fills values with line-unique bytes instead of the classic
    ``x``-padding — padded values dedup to a handful of shared lines
    under content addressing, so a padded overwrite frees almost
    nothing; entropy values model real cache blobs where every store
    allocates and every overwrite frees its full footprint.
    """

    name: str = "steady"
    ops: int = 0
    get_ratio: float = 0.5
    skew: float = 0.0
    set_bias: float = 0.7
    del_ratio: float = 0.0
    value_bytes: int = 0
    entropy: bool = False


def parse_phases(spec: str) -> List[PhaseSpec]:
    """Parse ``--phases`` syntax: comma-separated phase specs, each
    ``name[:ops=N][:get=F][:skew=F][:set=F][:del=F][:value=N]``
    (plus ``entropy=0|1``), e.g.
    ``read:ops=400:get=0.9,storm:ops=400:get=0.05:set=0.95``."""
    phases = []
    for part in spec.split(","):
        fields_ = [f for f in part.strip().split(":") if f]
        if not fields_:
            raise ValueError("empty phase spec in %r" % spec)
        phase = PhaseSpec(name=fields_[0])
        for item in fields_[1:]:
            key, _, value = item.partition("=")
            try:
                if key == "ops":
                    phase.ops = int(value)
                elif key == "get":
                    phase.get_ratio = float(value)
                elif key == "skew":
                    phase.skew = float(value)
                elif key == "set":
                    phase.set_bias = float(value)
                elif key == "del":
                    phase.del_ratio = float(value)
                elif key == "value":
                    phase.value_bytes = int(value)
                elif key == "entropy":
                    phase.entropy = bool(int(value))
                else:
                    raise ValueError
            except ValueError:
                raise ValueError("bad phase field %r in %r" % (item, part))
        phases.append(phase)
    return phases


class PhaseGate:
    """Arrival barrier: every client enters phase ``k`` together, so a
    fleet-wide mix shift hits the server as one front, not a ragged
    per-client drift (what the adaptive bench's boundaries rely on)."""

    def __init__(self, parties: int, phases: int) -> None:
        self.parties = max(1, parties)
        self._arrived = [0] * phases
        self._events: List[Optional[asyncio.Event]] = [None] * phases

    async def wait(self, phase: int) -> None:
        event = self._events[phase]
        if event is None:
            event = self._events[phase] = asyncio.Event()
        self._arrived[phase] += 1
        if self._arrived[phase] >= self.parties:
            event.set()
        await event.wait()


@dataclass
class LoadgenReport:
    """Client-side view of one load-generation run."""

    clients: int = 0
    ops: int = 0
    wall_seconds: float = 0.0
    stored: int = 0
    get_hits: int = 0
    get_misses: int = 0
    cas_stored: int = 0
    cas_conflicts: int = 0
    #: delete churn acknowledged (``DELETED`` / idempotent ``NOT_FOUND``)
    deleted: int = 0
    errors: int = 0
    oracle_checked: int = 0
    oracle_mismatches: int = 0
    shared_checked: int = 0
    shared_mismatches: int = 0
    #: replica reads that returned an older-but-legal value (fleet mode)
    stale_reads: int = 0
    #: endpoints driven (1 = classic single-server mode)
    endpoints: int = 1
    batch_rtts_ms: List[float] = field(default_factory=list)
    #: per-phase sections (phase-shifting runs only; empty otherwise)
    phases: List[Dict] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        return self.ops / max(1e-9, self.wall_seconds)

    @property
    def consistent(self) -> bool:
        """True when every check against the oracle passed."""
        return self.oracle_mismatches == 0 and self.shared_mismatches == 0

    def latency(self) -> Dict[str, float]:
        return latency_summary(self.batch_rtts_ms)

    def as_dict(self) -> Dict:
        """JSON-safe summary."""
        out = {
            "clients": self.clients,
            "ops": self.ops,
            "wall_seconds": round(self.wall_seconds, 3),
            "ops_per_second": round(self.ops_per_second, 1),
            "stored": self.stored,
            "get_hits": self.get_hits,
            "get_misses": self.get_misses,
            "cas_stored": self.cas_stored,
            "cas_conflicts": self.cas_conflicts,
            "errors": self.errors,
            "oracle_checked": self.oracle_checked,
            "oracle_mismatches": self.oracle_mismatches,
            "shared_checked": self.shared_checked,
            "shared_mismatches": self.shared_mismatches,
            "batch_rtt": self.latency(),
        }
        if self.deleted:
            # delete-churn runs only — classic mixes never issue
            # deletes, so their JSON stays byte-compatible
            out["deleted"] = self.deleted
        if self.endpoints > 1:
            # fleet mode only — the single-endpoint JSON stays
            # byte-compatible with every report ever written
            out["endpoints"] = self.endpoints
            out["stale_reads"] = self.stale_reads
        if self.phases:
            # phase-shifting runs only — same byte-compat discipline
            out["phases"] = self.phases
        return out


# ----------------------------------------------------------------------
# wire helpers


async def read_line_response(reader: asyncio.StreamReader) -> bytes:
    """One single-line response (STORED, DELETED, counters, errors)."""
    return await reader.readline()


async def read_value_response(
        reader: asyncio.StreamReader
) -> Dict[bytes, Tuple[bytes, bytes]]:
    """A get/gets response: key → (value, cas token or b"")."""
    values: Dict[bytes, Tuple[bytes, bytes]] = {}
    while True:
        line = await reader.readline()
        if line == b"END" + CRLF:
            return values
        if not line.startswith(b"VALUE "):
            raise ValueError("unexpected line in value response: %r" % line)
        parts = line.split()
        key, nbytes = parts[1], int(parts[3])
        token = parts[4] if len(parts) > 4 else b""
        block = await reader.readexactly(nbytes + len(CRLF))
        values[key] = (block[:-len(CRLF)], token)


def set_request(key: bytes, value: bytes) -> bytes:
    return b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value)


# ----------------------------------------------------------------------
# routing policies (fleet mode)


class SingleEndpointPolicy:
    """Everything to endpoint 0 — the classic single-server path."""

    #: strict oracle: every read must return the last written value
    relaxed_reads = False

    def write_endpoint(self, key: bytes) -> int:
        return 0

    def read_endpoint(self, key: bytes) -> int:
        return 0


class ReadSplitPolicy:
    """One writer endpoint; plain reads round-robin the replicas.

    ``gets`` (CAS-token acquisition) counts as part of a
    read-modify-write cycle and goes to the writer — a token learned
    from a lagging replica would just burn a legal-but-useless CAS
    conflict.
    """

    relaxed_reads = True

    def __init__(self, writer: int = 0,
                 readers: Optional[List[int]] = None) -> None:
        self.writer = writer
        self.readers = list(readers) if readers else [writer]
        self._rr = 0

    def write_endpoint(self, key: bytes) -> int:
        return self.writer

    def read_endpoint(self, key: bytes) -> int:
        endpoint = self.readers[self._rr % len(self.readers)]
        self._rr += 1
        return endpoint


# ----------------------------------------------------------------------
# one client


class LoadgenClient:
    """One connection's worth of pipelined mixed traffic."""

    def __init__(self, cid: int, host: str, port: int, ops: int,
                 pipeline_depth: int, get_ratio: float, key_space: int,
                 value_bytes: int, seed: int,
                 clock: Callable[[], float] = time.monotonic,
                 endpoints: Optional[List[Tuple[str, int]]] = None,
                 policy=None,
                 phases: Optional[List[PhaseSpec]] = None,
                 phase_gate: Optional[PhaseGate] = None) -> None:
        self.cid = cid
        self.host, self.port = host, port
        #: (host, port) per endpoint index; the policy routes into this
        self.endpoints = list(endpoints) if endpoints else [(host, port)]
        self.policy = policy if policy is not None \
            else SingleEndpointPolicy()
        #: injectable time source (same discipline as ServerMetrics.clock)
        #: so RTT measurements are deterministic under a testing clock
        self.clock = clock
        self.ops = ops
        self.pipeline_depth = max(1, pipeline_depth)
        self.get_ratio = get_ratio
        self.key_space = key_space
        self.value_bytes = value_bytes
        #: current-phase mix knobs; phaseless runs never touch them
        self.skew = 0.0
        self.set_bias = 0.7
        self.del_ratio = 0.0
        self.entropy = False
        if phases:
            # resolve per-phase op budgets: zero-op phases split the
            # run's total evenly (copies — never mutate the caller's)
            from dataclasses import replace
            unsized = sum(1 for p in phases if p.ops <= 0)
            spare = max(0, ops - sum(p.ops for p in phases if p.ops > 0))
            share = spare // unsized if unsized else 0
            self.phases = [replace(p, ops=(p.ops if p.ops > 0 else share))
                           for p in phases]
            self.ops = sum(p.ops for p in self.phases)
        else:
            self.phases = []
        self.phase_gate = phase_gate
        #: raw per-phase RTT slices, for fleet-level re-aggregation
        self.phase_rtts: List[List[float]] = []
        self.rng = random.Random((seed << 16) | cid)
        self.oracle: Dict[bytes, bytes] = {}
        #: every value this client ever stored per key — the legal set
        #: for relaxed (replica-lag-aware) read checking
        self.history: Dict[bytes, Set[bytes]] = {}
        self.shared_committed: Dict[bytes, Set[bytes]] = {}
        self.report = LoadgenReport(clients=1,
                                    endpoints=len(self.endpoints))
        #: private keys whose last write was a delete — verified absent
        self.tombstones: Set[bytes] = set()
        self._seq = 0
        self._cas_tokens: Dict[bytes, bytes] = {}
        self._cas_values: Dict[Tuple[bytes, bytes], bytes] = {}

    def _key_index(self) -> int:
        """Key index draw; ``skew`` > 0 concentrates toward index 0.

        The skewless path keeps the original ``randrange`` draw so
        phaseless runs consume the RNG stream exactly as they always
        have (seeded traces stay reproducible across this change).
        """
        if self.skew <= 0.0:
            return self.rng.randrange(self.key_space)
        return min(self.key_space - 1,
                   int(self.key_space
                       * self.rng.random() ** (1.0 + self.skew)))

    def _private_key(self) -> bytes:
        return b"c%d:k%02d" % (self.cid, self._key_index())

    def _shared_key(self) -> bytes:
        return b"shared:k%02d" % self._key_index()

    def _fresh_value(self) -> bytes:
        self._seq += 1
        head = b"v%d.%d." % (self.cid, self._seq)
        if not self.entropy:
            return head.ljust(self.value_bytes, b"x")
        # line-unique filler: deterministic per (cid, seq, chunk), and
        # the 28-byte chunk stride keeps every 32-byte line distinct
        parts, size, i = [head], len(head), 0
        while size < self.value_bytes:
            chunk = b"%010d.%06d.%010d" % (self._seq, self.cid, i)
            parts.append(chunk)
            size += len(chunk)
            i += 1
        return b"".join(parts)[:self.value_bytes]

    def _plan_batch(self, budget: int) -> List[Tuple[str, bytes, bytes]]:
        """(kind, key, value) triples for one pipelined batch."""
        batch = []
        # any CAS token learned in the previous batch gets used first
        while self._cas_tokens and len(batch) < budget:
            key, token = self._cas_tokens.popitem()
            batch.append(("cas", key, token))
        while len(batch) < budget:
            roll = self.rng.random()
            # band layout keeps the classic (del_ratio=0) path drawing
            # the exact RNG stream it always did: get band first, then
            # the delete slice, then the historical set/gets split of
            # whatever remains
            write_band = 1 - self.get_ratio - self.del_ratio
            if roll < self.get_ratio:
                key = (self._shared_key() if self.rng.random() < 0.3
                       else self._private_key())
                batch.append(("get", key, b""))
            elif roll < self.get_ratio + self.del_ratio:
                batch.append(("delete", self._private_key(), b""))
            elif roll < self.get_ratio + self.del_ratio \
                    + write_band * self.set_bias:
                batch.append(("set", self._private_key(),
                              self._fresh_value()))
            else:
                batch.append(("gets", self._shared_key(), b""))
        return batch

    def _encode(self, batch) -> bytes:
        out = []
        for kind, key, extra in batch:
            if kind == "set":
                out.append(set_request(key, extra))
            elif kind == "delete":
                out.append(b"delete %s\r\n" % key)
            elif kind == "cas":
                value = self._fresh_value()
                out.append(b"cas %s 0 0 %d %s\r\n%s\r\n"
                           % (key, len(value), extra, value))
                self._cas_values[(key, extra)] = value
            else:  # get / gets
                out.append(b"%s %s\r\n" % (kind.encode(), key))
        return b"".join(out)

    def _route(self, kind: str, key: bytes) -> int:
        """Endpoint index for one op: only plain reads go to replicas."""
        if kind == "get":
            return self.policy.read_endpoint(key)
        return self.policy.write_endpoint(key)

    async def run(self) -> LoadgenReport:
        conns = [await asyncio.open_connection(host, port)
                 for host, port in self.endpoints]
        try:
            if not self.phases:
                await self._drive(conns, self.ops)
            else:
                for idx, phase in enumerate(self.phases):
                    if self.phase_gate is not None:
                        await self.phase_gate.wait(idx)
                    self.get_ratio = phase.get_ratio
                    self.skew = phase.skew
                    self.set_bias = phase.set_bias
                    self.del_ratio = phase.del_ratio
                    self.entropy = phase.entropy
                    if phase.value_bytes > 0:
                        self.value_bytes = phase.value_bytes
                    counters = self._counter_state()
                    rtt_mark = len(self.report.batch_rtts_ms)
                    started = self.clock()
                    await self._drive(conns, phase.ops)
                    self._close_phase(phase, counters, rtt_mark,
                                      started, self.clock())
            await self._verify_private(conns)
            for _, writer in conns:
                writer.write(b"quit\r\n")
                await writer.drain()
        finally:
            for _, writer in conns:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass
        return self.report

    async def _drive(self, conns, ops: int) -> None:
        """The classic pipelined loop, for one ``ops``-sized budget."""
        report = self.report
        issued = 0
        while issued < ops:
            batch = self._plan_batch(min(self.pipeline_depth,
                                         ops - issued))
            # route, then group per endpoint preserving op order —
            # the single-endpoint case degenerates to the original
            # one-buffer-one-syscall pipeline, byte for byte
            grouped: Dict[int, List] = {}
            for op in batch:
                grouped.setdefault(self._route(op[0], op[1]),
                                   []).append(op)
            started = self.clock()
            for endpoint in sorted(grouped):
                conns[endpoint][1].write(self._encode(
                    grouped[endpoint]))
            for endpoint in sorted(grouped):
                await conns[endpoint][1].drain()
            for endpoint in sorted(grouped):
                for kind, key, extra in grouped[endpoint]:
                    await self._consume(conns[endpoint][0], kind,
                                        key, extra)
            report.batch_rtts_ms.append(
                (self.clock() - started) * 1000.0)
            issued += len(batch)
            report.ops += len(batch)

    _PHASE_COUNTERS = ("ops", "stored", "get_hits", "get_misses",
                       "cas_stored", "cas_conflicts", "deleted",
                       "errors")

    def _counter_state(self) -> Tuple[int, ...]:
        return tuple(getattr(self.report, name)
                     for name in self._PHASE_COUNTERS)

    def _close_phase(self, phase: PhaseSpec, counters: Tuple[int, ...],
                     rtt_mark: int, started: float, ended: float) -> None:
        """Append a per-phase section diffing counters since ``phase``
        began; raw RTT slices are kept aside for fleet aggregation."""
        wall = ended - started
        section = {"name": phase.name,
                   "get_ratio": phase.get_ratio,
                   "skew": phase.skew,
                   "wall_seconds": round(wall, 3),
                   "t_start": round(started, 6),
                   "t_end": round(ended, 6)}
        for name, before in zip(self._PHASE_COUNTERS, counters):
            section[name] = getattr(self.report, name) - before
        section["ops_per_second"] = round(
            section["ops"] / max(1e-9, wall), 1)
        rtts = self.report.batch_rtts_ms[rtt_mark:]
        section["batch_rtt"] = latency_summary(rtts)
        self.phase_rtts.append(rtts)
        self.report.phases.append(section)

    async def _consume(self, reader, kind: str, key: bytes,
                       extra: bytes) -> None:
        report = self.report
        if kind in ("get", "gets"):
            values = await read_value_response(reader)
            if key in values:
                report.get_hits += 1
                if kind == "gets":
                    self._cas_tokens[key] = values[key][1]
                if key in self.oracle:
                    report.oracle_checked += 1
                    value = values[key][0]
                    if value == self.oracle[key]:
                        pass
                    elif self.policy.relaxed_reads \
                            and value in self.history.get(key, ()):
                        # a lagging replica returned an older value this
                        # client really wrote: legal, and counted
                        report.stale_reads += 1
                    else:
                        report.oracle_mismatches += 1
            else:
                report.get_misses += 1
            return
        line = await read_line_response(reader)
        if kind == "set":
            if line == b"STORED" + CRLF:
                report.stored += 1
                self.oracle[key] = extra
                self.tombstones.discard(key)
                self.history.setdefault(key, set()).add(extra)
            else:
                report.errors += 1
        elif kind == "delete":
            if line in (b"DELETED" + CRLF, b"NOT_FOUND" + CRLF):
                # NOT_FOUND is legal churn (never-set or double-deleted
                # key) — what matters to the oracle is that the key is
                # now absent either way
                report.deleted += 1
                self.oracle.pop(key, None)
                self.tombstones.add(key)
            else:
                report.errors += 1
        elif kind == "cas":
            value = self._cas_values.pop((key, extra), None)
            if line == b"STORED" + CRLF:
                report.cas_stored += 1
                if value is not None:
                    self.shared_committed.setdefault(key, set()).add(value)
            elif line in (b"EXISTS" + CRLF, b"NOT_FOUND" + CRLF):
                report.cas_conflicts += 1
            else:
                report.errors += 1

    async def _verify_private(self, conns) -> None:
        """Pipelined read-back of every private key against the oracle.

        Always strict, always against the **write** endpoint — replica
        lag never excuses the authoritative copy from matching the
        oracle exactly.
        """
        keys = sorted(self.oracle) + sorted(self.tombstones)
        if not keys:
            return
        grouped: Dict[int, List[bytes]] = {}
        for key in keys:
            grouped.setdefault(self.policy.write_endpoint(key),
                               []).append(key)
        for endpoint in sorted(grouped):
            reader, writer = conns[endpoint]
            writer.write(b"".join(b"get %s\r\n" % key
                                  for key in grouped[endpoint]))
            await writer.drain()
            for key in grouped[endpoint]:
                values = await read_value_response(reader)
                self.report.oracle_checked += 1
                if key in self.oracle:
                    if key not in values \
                            or values[key][0] != self.oracle[key]:
                        self.report.oracle_mismatches += 1
                elif key in values:
                    # tombstoned key resurfaced: a mode lost the delete
                    self.report.oracle_mismatches += 1


# ----------------------------------------------------------------------
# the fleet


async def run_loadgen(host: str, port: int, clients: int = 4,
                      ops_per_client: int = 100, pipeline_depth: int = 8,
                      get_ratio: float = 0.5, key_space: int = 16,
                      value_bytes: int = 32, seed: int = 0,
                      clock: Callable[[], float] = time.monotonic,
                      endpoints: Optional[List[Tuple[str, int]]] = None,
                      policy_factory: Optional[Callable[[], object]] = None,
                      phases: Optional[List[PhaseSpec]] = None
                      ) -> LoadgenReport:
    """Drive ``clients`` concurrent pipelined connections; verify results.

    Fleet mode: pass ``endpoints`` (a list of ``(host, port)``; index 0
    is the default) and a ``policy_factory`` building one routing policy
    per client — each client needs its own (policies carry round-robin
    state). Seeding and the final shared-keyspace verification always go
    through each key's *write* endpoint.
    """
    endpoints = list(endpoints) if endpoints else [(host, port)]
    make_policy = policy_factory if policy_factory is not None \
        else SingleEndpointPolicy
    route = make_policy()  # for the seed/verify phases

    # group the shared keys by their write endpoint once; seeding and
    # final verification reuse the same grouping (and connections)
    shared_by_endpoint: Dict[int, List[bytes]] = {}
    for j in range(key_space):
        key = b"shared:k%02d" % j
        shared_by_endpoint.setdefault(route.write_endpoint(key),
                                      []).append(key)
    conns = {}
    for endpoint in sorted(shared_by_endpoint):
        conns[endpoint] = await asyncio.open_connection(
            *endpoints[endpoint])
    # seed the shared keyspace so gets/cas have something to race on
    for endpoint, keys in sorted(shared_by_endpoint.items()):
        reader, writer = conns[endpoint]
        for key in keys:
            writer.write(set_request(key, b"seed"))
        await writer.drain()
        for _ in keys:
            await read_line_response(reader)

    gate = PhaseGate(clients, len(phases)) if phases else None
    fleet = [LoadgenClient(cid, host, port, ops_per_client, pipeline_depth,
                           get_ratio, key_space, value_bytes, seed,
                           clock=clock, endpoints=endpoints,
                           policy=make_policy(),
                           phases=phases, phase_gate=gate)
             for cid in range(clients)]
    started = clock()
    reports = await asyncio.gather(*(client.run() for client in fleet))
    wall = clock() - started

    total = LoadgenReport(clients=clients, wall_seconds=wall,
                          endpoints=len(endpoints))
    committed: Dict[bytes, Set[bytes]] = {}
    for client, report in zip(fleet, reports):
        for name in ("ops", "stored", "get_hits", "get_misses", "cas_stored",
                     "cas_conflicts", "deleted", "errors", "oracle_checked",
                     "oracle_mismatches", "stale_reads"):
            setattr(total, name, getattr(total, name) + getattr(report, name))
        total.batch_rtts_ms.extend(report.batch_rtts_ms)
        for key, values in client.shared_committed.items():
            committed.setdefault(key, set()).update(values)

    if phases:
        # fleet-level phase sections: counters summed across clients,
        # wall = first-entry to last-exit (the gate aligns entries)
        for idx, phase in enumerate(phases):
            sections = [r.phases[idx] for r in reports]
            t_start = min(s["t_start"] for s in sections)
            t_end = max(s["t_end"] for s in sections)
            wall = t_end - t_start
            merged = {"name": phase.name,
                      "get_ratio": phase.get_ratio,
                      "skew": phase.skew,
                      "wall_seconds": round(wall, 3),
                      "t_start": round(t_start, 6),
                      "t_end": round(t_end, 6)}
            for name in LoadgenClient._PHASE_COUNTERS:
                merged[name] = sum(s[name] for s in sections)
            merged["ops_per_second"] = round(
                merged["ops"] / max(1e-9, wall), 1)
            rtts: List[float] = []
            for client in fleet:
                rtts.extend(client.phase_rtts[idx])
            merged["batch_rtt"] = latency_summary(rtts)
            total.phases.append(merged)

    # shared keys: the surviving value must be one somebody committed —
    # read from the write endpoint, where the answer is authoritative
    for endpoint, keys in sorted(shared_by_endpoint.items()):
        reader, writer = conns[endpoint]
        for key in keys:
            writer.write(b"get %s\r\n" % key)
        await writer.drain()
        for key in keys:
            values = await read_value_response(reader)
            total.shared_checked += 1
            legal = committed.get(key, set()) | {b"seed"}
            if key not in values or values[key][0] not in legal:
                total.shared_mismatches += 1
    for reader, writer in conns.values():
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return total
