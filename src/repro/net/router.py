"""Shard routing and per-shard commit queues for the serving layer.

The §5.1.1 closing remark — split a contended map so updates stop
sharing a CAS target — is realized here at serving scale: the router
fans keys out across ``shard_count`` independent
:class:`~repro.apps.memcached.server.HicampMemcached` backends, all on
one shared :class:`~repro.core.machine.Machine` (so deduplication still
spans the whole cache). Each shard owns an asyncio commit queue and a
worker coroutine:

* **reads** (``get``/``gets``/``stats``/``version``) execute inline —
  they are snapshot reads and need no synchronization, the paper's
  headline memcached property;
* **writes** are enqueued to the owning shard, giving natural
  backpressure (bounded queue) and FIFO ordering per shard;
* a worker drains its queue in *batches*: consecutive ``set`` requests
  for distinct keys are all staged against the same snapshot and then
  committed one by one — every commit after the first loses its CAS and
  is absorbed by **merge-update**, never an application retry. The
  ``merge_commits`` counter in :class:`ServerMetrics` counts exactly
  those absorbed races.

Per-connection ordering (a ``get`` pipelined behind a ``set`` of the
same key must see it) is preserved by :class:`ConnectionState`, which
tracks the last write enqueued per shard and makes later reads from the
same connection wait on it.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from dataclasses import fields as dataclass_fields
from typing import Awaitable, Callable, Dict, List, Optional

from repro.apps.memcached.protocol import CRLF, ProtocolHandler
from repro.apps.memcached.server import HicampMemcached
from repro.core.machine import Machine
from repro.net.adaptive import AdaptiveConfig, BatchSample, CommitController
from repro.net.framing import Frame
from repro.net.metrics import ServerMetrics
from repro.obs import adapters
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, DramProbe

#: Commands that mutate the cache and therefore go through a commit queue.
WRITE_COMMANDS = frozenset((b"set", b"add", b"replace", b"cas", b"delete",
                            b"incr", b"decr"))

#: Non-``set`` writes that may commute around a staged bulk run when the
#: controller's storm-staging posture is on and their key is disjoint
#: from every key in the run. Applying such a frame against the
#: committed snapshot *before* the run lands is indistinguishable from
#: wire order for its own key (memcached orders per key, not across
#: keys), so the run keeps growing instead of splitting.
HOP_COMMANDS = WRITE_COMMANDS - {b"set"}

#: Single- or multi-key snapshot reads, answered inline.
READ_COMMANDS = frozenset((b"get", b"gets"))

#: Queue marker that orders a read after this connection's prior writes.
#: The worker resolves it in FIFO position and yields, so the reader runs
#: before any write enqueued *behind* the fence commits.
FENCE = b"\x00fence"


class ConnectionState:
    """Per-connection ordering state: last write enqueued per shard."""

    def __init__(self) -> None:
        self.last_write: Dict[int, "asyncio.Future[bytes]"] = {}

    def depends_on(self, shard: int) -> Optional["asyncio.Future[bytes]"]:
        future = self.last_write.get(shard)
        if future is not None and future.done():
            del self.last_write[shard]
            return None
        return future


class ShardRouter:
    """Key-to-shard fan-out with per-shard asyncio commit queues."""

    def __init__(self, machine: Optional[Machine] = None,
                 shard_count: int = 4,
                 backend_factory: Callable[[Machine], HicampMemcached]
                 = HicampMemcached,
                 queue_depth: int = 256,
                 batch_limit: int = 16,
                 metrics: Optional[ServerMetrics] = None,
                 injector=None,
                 recorder=None,
                 registry: Optional[MetricsRegistry] = None,
                 commit_mode: str = "merge",
                 structural_memo: bool = True,
                 index_kind: str = "cuckoo",
                 reclaim_kind: str = "epoch",
                 reclaim_budget: int = 512,
                 adaptive_config: Optional[AdaptiveConfig] = None) -> None:
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if commit_mode not in ("cas", "merge", "bulk", "adaptive"):
            raise ValueError("commit_mode must be 'cas', 'merge', "
                             "'bulk' or 'adaptive'")
        #: how a worker commits a run of batched sets: ``"cas"`` applies
        #: every write per-op through the protocol handler; ``"merge"``
        #: stages each against one snapshot and lets merge-update absorb
        #: the lost CASes (the §4.3 behaviour the latency model prices);
        #: ``"bulk"`` coalesces the run into one tree rebuild and one
        #: root swap via the put_many bulk-ingest path; ``"adaptive"``
        #: starts at merge and lets the :class:`CommitController` move
        #: each shard between the three online (repro.net.adaptive).
        self.commit_mode = commit_mode
        #: optional :class:`repro.testing.faults.FaultInjector`; its
        #: ``before_commit`` hook stalls a shard worker between draining
        #: a batch and applying it (adversarial testing only).
        self.injector = injector
        # the serving stack opts into the cuckoo lookup-by-content index
        # and epoch-deferred reclamation by default (index.py,
        # reclaim.py; legacy/immediate remain available for modeled
        # experiments). Both kinds only apply when the router owns its
        # machine — a caller-supplied machine keeps its own config.
        if machine is None:
            from repro.params import MachineConfig, MemoryConfig
            machine = Machine(MachineConfig(
                memory=MemoryConfig(index_kind=index_kind,
                                    reclaim_kind=reclaim_kind)))
        self.machine = machine
        #: per-epoch drain bound applied between commit batches; the
        #: deferral queue carries at most one batch's frees past this
        self.reclaim_budget = max(1, reclaim_budget)
        self.servers = [backend_factory(self.machine)
                        for _ in range(shard_count)]
        self.handlers = [ProtocolHandler(server) for server in self.servers]
        self.queue_depth = queue_depth
        self.batch_limit = max(1, batch_limit)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: trace recorder (:mod:`repro.obs.trace`); the no-op default
        #: keeps every span site zero-cost (guarded on ``enabled``)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: the unified metrics registry: the server silo, the machine's
        #: DRAM counters and the router's cache-wide state all read
        #: through it (``stats prom`` serves its exposition in-band)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        adapters.register_server_metrics(self.registry, self.metrics)
        adapters.register_dram_stats(self.registry, self.machine.mem.dram)
        adapters.register_router(self.registry, self)
        adapters.register_index(self.registry, self.machine.mem.store)
        adapters.register_reclaim(self.registry, self.machine.mem.store)
        # the structural memo (PLID-keyed build/merge/fingerprint caches)
        # is off by default machine-wide so modeled-DRAM experiments stay
        # exact; the serving stack opts in — hits bypass modeled lookup
        # traffic but stay refcount-exact (docs/performance.md)
        if structural_memo:
            self.machine.mem.memo.enable()
        adapters.register_memo(self.registry, self.machine.mem.memo)
        # the per-backend silos some subclasses add: eviction accounting
        # (ManagedMemcached) and per-tenant namespaces (TenantMemcached)
        # read through the registry like every other silo
        if all(hasattr(s, "eviction") for s in self.servers):
            adapters.register_eviction(
                self.registry, [s.eviction for s in self.servers])
        if all(hasattr(s, "tenants") for s in self.servers):
            adapters.register_tenants(self.registry, self.servers)
        # batched merge-commits stage through HMap.put_steps, which only
        # matches plain backends (a TTL backend rewrites the payload);
        # bulk commits go through set_many, which any BULK_SAFE backend
        # (plain or tenant-routed) supports
        self._merge_batches = all(type(s) is HicampMemcached
                                  for s in self.servers)
        self._bulk_safe = all(getattr(type(s), "BULK_SAFE", False)
                              for s in self.servers)
        #: per-shard commit-strategy lens: always samples (the adapter
        #: exports its raw inputs under static modes too); only
        #: ``commit_mode="adaptive"`` lets it retune mode/batch
        #: limit/reclaim budget online at batch boundaries
        self.controller = CommitController(
            shard_count,
            "merge" if commit_mode == "adaptive" else commit_mode,
            adaptive=(commit_mode == "adaptive"),
            batch_limit=self.batch_limit,
            reclaim_budget=self.reclaim_budget,
            merge_ok=self._merge_batches,
            bulk_ok=self._bulk_safe,
            config=adaptive_config,
            recorder=self.recorder)
        adapters.register_adaptive(self.registry, self.controller)
        self.queues: List["asyncio.Queue"] = []
        self._workers: List["asyncio.Task"] = []
        #: callbacks fired as ``listener(shard, vsid, commits)`` after a
        #: shard worker applies a batch containing writes — ``commits``
        #: root advances of the shard backend's current segment ``vsid``.
        #: The replication leader tails committed state through this hook
        #: (synchronous, must not block: mark-dirty-and-wake only).
        self.commit_listeners: List[Callable[[int, int, int], None]] = []

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Create the commit queues and start one worker per shard."""
        if self._workers:
            return
        self.queues = [asyncio.Queue(maxsize=self.queue_depth)
                       for _ in self.servers]
        self._workers = [asyncio.ensure_future(self._worker(i))
                         for i in range(len(self.servers))]

    async def drain(self) -> None:
        """Wait until every enqueued commit has been applied.

        Also quiesces the epoch reclaimer (a no-op under ``immediate``),
        so a drained router exposes exact state to audits, persistence
        and replication FORGET flushing. :meth:`abort` deliberately does
        not — a crash-stop leaves deferred frees behind by design.
        """
        if self.queues:
            await asyncio.gather(*(queue.join() for queue in self.queues))
        self.machine.mem.store.reclaim_quiesce()

    async def stop(self) -> None:
        """Flush pending commits, then stop the workers."""
        await self.drain()
        await self.abort()

    async def abort(self) -> None:
        """Crash-stop: cancel the workers without draining the queues.

        Enqueued-but-unapplied commits are dropped on the floor — this is
        the cluster tier's model of a leader dying mid-stream, so it must
        *not* flush (the whole point is that acknowledged state and
        queued state part ways, and replication convergence is judged on
        what actually committed).
        """
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []

    def pending_commits(self) -> int:
        """Writes enqueued but not yet applied, across all shards."""
        return sum(queue.qsize() for queue in self.queues)

    # ------------------------------------------------------------------
    # routing

    def shard_index(self, key: bytes) -> int:
        """Owning shard for ``key`` (stable across the server's life)."""
        return zlib.crc32(key) % len(self.servers)

    async def dispatch(self, frame: Frame, conn: ConnectionState,
                       parent: Optional[int] = None) -> Awaitable[bytes]:
        """Route one frame; returns an awaitable yielding the response.

        Writes are *enqueued* before this returns (waiting for queue
        space is the backpressure), but their response awaitable resolves
        only when the shard worker commits them — so a connection can
        keep dispatching pipelined requests while commits are in flight.
        ``parent`` is the request's trace span id (propagated into the
        commit-queue batch span when tracing is enabled).
        """
        if frame.error is not None:
            self.metrics.protocol_errors += 1
            return _completed(b"CLIENT_ERROR %s\r\n" % frame.error.encode())
        command = frame.command
        if command in WRITE_COMMANDS and frame.key is not None:
            return await self._enqueue_write(frame, conn, parent)
        if command in READ_COMMANDS and len(frame.args) > 1:
            return await self._multi_get(frame, conn)
        if command in READ_COMMANDS and frame.key is not None:
            shard = self.shard_index(frame.key)
            self.controller.note_read(shard)
            if conn.depends_on(shard) is not None:
                fence = await self._enqueue_fence(shard, (frame.key,))
                return asyncio.ensure_future(
                    self._read_after((fence,), shard, frame))
            return _completed(self.handlers[shard].handle(frame.raw))
        if command == b"stats":
            return await self._stats_after_writes(frame, conn)
        if command == b"flush_all":
            return await self._broadcast(frame, conn, parent)
        # version, unknown commands, malformed writes: any handler can
        # answer these without touching shard state
        return _completed(self.handlers[0].handle(frame.raw))

    async def _enqueue_write(self, frame: Frame, conn: ConnectionState,
                             parent: Optional[int] = None
                             ) -> "asyncio.Future[bytes]":
        shard = self.shard_index(frame.key)
        future: "asyncio.Future[bytes]" = \
            asyncio.get_running_loop().create_future()
        await self.queues[shard].put((frame, future, parent))
        self.metrics.observe_queue_depth(self.queues[shard].qsize())
        conn.last_write[shard] = future
        return future

    async def _enqueue_fence(self, shard: int,
                             keys=()) -> "asyncio.Future[bytes]":
        # the fence carries the keys its reader is about to fetch: a
        # storm-staging worker may resolve it early when none of them
        # are in the staged run (an empty tuple means "all keys" —
        # stats fences — and always splits the run)
        future: "asyncio.Future[bytes]" = \
            asyncio.get_running_loop().create_future()
        await self.queues[shard].put(
            (Frame(raw=b"", command=FENCE, args=list(keys)), future, None))
        return future

    async def _read_after(self, deps, shard: int, frame: Frame) -> bytes:
        for dep in deps:
            try:
                await dep
            except Exception:
                pass  # the write's own response reports its failure
        return self.handlers[shard].handle(frame.raw)

    async def _multi_get(self, frame: Frame,
                         conn: ConnectionState) -> Awaitable[bytes]:
        by_shard: Dict[int, List[bytes]] = {}
        for key in frame.args:
            shard = self.shard_index(key)
            self.controller.note_read(shard)
            by_shard.setdefault(shard, []).append(key)
        deps = [await self._enqueue_fence(shard, keys)
                for shard, keys in by_shard.items()
                if conn.depends_on(shard) is not None]

        async def fetch() -> bytes:
            for dep in deps:
                try:
                    await dep
                except Exception:
                    pass
            with_token = frame.command == b"gets"
            out = []
            for key in frame.args:
                handler = self.handlers[self.shard_index(key)]
                # reuse the single-shard formatter, dropping its END
                sub = handler.handle(
                    (b"gets " if with_token else b"get ") + key + CRLF)
                out.append(sub[:-len(b"END\r\n")])
            out.append(b"END\r\n")
            return b"".join(out)

        return asyncio.ensure_future(fetch())

    async def _stats_after_writes(self, frame: Frame,
                                  conn: ConnectionState) -> Awaitable[bytes]:
        # stats pipelined behind this connection's writes must count them
        deps = [await self._enqueue_fence(shard)
                for shard in range(len(self.servers))
                if conn.depends_on(shard) is not None]
        if not deps:
            return _completed(self.stats_response(frame.args))

        async def fetch() -> bytes:
            for dep in deps:
                await dep
            return self.stats_response(frame.args)

        return asyncio.ensure_future(fetch())

    async def _broadcast(self, frame: Frame, conn: ConnectionState,
                         parent: Optional[int] = None) -> Awaitable[bytes]:
        futures = []
        for shard in range(len(self.servers)):
            future: "asyncio.Future[bytes]" = \
                asyncio.get_running_loop().create_future()
            await self.queues[shard].put((frame, future, parent))
            conn.last_write[shard] = future
            futures.append(future)

        async def gather() -> bytes:
            responses = await asyncio.gather(*futures)
            return responses[0]

        return asyncio.ensure_future(gather())

    # ------------------------------------------------------------------
    # commit workers

    async def _worker(self, shard: int) -> None:
        queue = self.queues[shard]
        while True:
            batch = [await queue.get()]
            # the controller owns the coalescing limit per shard (it is
            # just ``batch_limit`` under static modes); read it fresh
            # every drain so storms widen batches immediately
            while len(batch) < self.controller.batch_limit(shard):
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                if self.injector is not None:
                    # commit-queue stall: the batch is drained but its
                    # commits are delayed while snapshot reads proceed
                    await self.injector.before_commit(shard)
                await self._apply_batch(shard, batch)
            finally:
                for _ in batch:
                    queue.task_done()

    async def _apply_batch(self, shard: int, batch) -> None:
        controller = self.controller
        # mode is read once per batch: the safe mid-stream handoff point
        # — fences and read-after-write ordering only depend on queue
        # FIFO position, never on how a drained batch commits
        mode = controller.mode(shard)
        batch_runs = ((self._merge_batches if mode == "merge"
                       else self._bulk_safe) if mode != "cas" else False)
        self.metrics.commit_batches += 1
        writes = sum(1 for frame, _, _ in batch if frame.command != FENCE)
        # duplicate-set census, mode-independent (a shard running per-op
        # CAS must still see the hot-key signal fade to switch back)
        sets = dups = 0
        seen: set = set()
        for frame, _, _ in batch:
            if frame.command == b"set" and frame.payload is not None:
                sets += 1
                if frame.key in seen:
                    dups += 1
                else:
                    seen.add(frame.key)
        recorder = self.recorder
        batch_span = None
        dram_probe = None
        if recorder.enabled:
            # the batch span links back to every request span whose
            # write it commits, and carries the DRAM-access delta the
            # whole batch caused (Figure 6 categories, attributed)
            batch_span = recorder.begin(
                "commit_batch", shard=shard, ops=len(batch), writes=writes,
                requests=[p for _, _, p in batch if p is not None])
            dram_probe = DramProbe(self.machine.mem.dram)
            dram_probe.__enter__()
        # retry/merge counters are global; the deltas are exact unless a
        # fence yield interleaves another shard's batch (sampling noise
        # the hysteresis windows absorb)
        retries_before = self.metrics.cas_retries
        merges_before = self.metrics.merge_commits
        batch_t0 = controller.clock()
        # storm staging: while the controller holds this shard in bulk
        # mode it may commute key-disjoint fences and non-set writes
        # around a staged run instead of splitting it — per-key order
        # is untouched (anything touching a staged key still splits),
        # only the cross-key FIFO interleaving loosens, which memcached
        # semantics never promised. The payoff is that a storm batch
        # becomes one put_many instead of one per fence/delete/cas gap.
        hop = (mode == "bulk" and batch_runs
               and controller.hop_reads(shard))
        pending = list(batch)
        while pending:
            run, keys = [], set()
            while pending and batch_runs:
                frame, future, _ = pending[0]
                if frame.command == b"set" and frame.payload is not None:
                    if frame.key in keys and mode != "bulk":
                        # staging one key twice against one snapshot is
                        # a true conflict, so a merge run must split
                        # here; put_many's documented last-wins dup
                        # handling lets a bulk run absorb repeats
                        # instead of splitting — under hot keys that is
                        # bulk's whole advantage
                        break
                    keys.add(frame.key)
                    run.append(pending.pop(0))
                    continue
                if not hop or not run:
                    break
                if frame.command == FENCE:
                    if not frame.args \
                            or any(k in keys for k in frame.args):
                        break
                    # the reader behind this fence fetches keys the
                    # staged run never touches: resolve it now and
                    # yield so the read lands before any later write
                    # of those keys joins a run
                    pending.pop(0)
                    _resolve(future, b"")
                    await asyncio.sleep(0)
                    continue
                if (frame.command in HOP_COMMANDS and frame.args
                        and not any(arg in keys for arg in frame.args)):
                    pending.pop(0)
                    self._apply_one(shard, frame, future)
                    continue
                break
            if len(run) > 1 and mode == "bulk":
                self._commit_bulk_sets(shard, run, batch_span)
            elif len(run) > 1:
                self._commit_merged_sets(shard, run, batch_span)
            elif run:
                self._apply_one(shard, run[0][0], run[0][1])
            else:
                frame, future, _ = pending.pop(0)
                if frame.command == FENCE:
                    _resolve(future, b"")
                    # let the fenced reader run before any write that was
                    # enqueued behind the fence commits
                    await asyncio.sleep(0)
                else:
                    self._apply_one(shard, frame, future)
        batch_rtt_s = controller.clock() - batch_t0
        if writes:
            kvp = getattr(self.servers[shard], "kvp", None)
            vsid = kvp.vsid if kvp is not None else shard
            for _ in range(writes):
                self.metrics.observe_commit(vsid)
            for listener in self.commit_listeners:
                listener(shard, vsid, writes)
            if batch_span is not None:
                recorder.attach(batch_span, vsid=vsid)
        if batch_span is not None:
            dram_probe.__exit__(None, None, None)
            recorder.end(batch_span, **dram_probe.attrs())
        # epoch advancement between commit batches: drain a bounded
        # slice of the frees this batch deferred (no-op under the
        # immediate kind) so the queue stays shallow without putting
        # subtree walks back on any commit's critical path. The budget
        # is the controller's: shrunk during storms, raised when idle.
        store = self.machine.mem.store
        store.reclaim_advance(controller.reclaim_budget(shard))
        reclaimer = store.reclaimer
        controller.observe_batch(shard, BatchSample(
            writes=writes, sets=sets, dup_sets=dups,
            cas_retries=self.metrics.cas_retries - retries_before,
            merge_commits=self.metrics.merge_commits - merges_before,
            queue_depth=self.queues[shard].qsize(),
            rtt_s=batch_rtt_s,
            reclaim_pending=(reclaimer.pending()
                             if reclaimer is not None else 0)))

    def _commit_merged_sets(self, shard: int, run,
                            batch_span: Optional[int] = None) -> None:
        """Stage distinct-key sets against one snapshot, commit each.

        Every commit after the first finds the root moved, loses its CAS
        and merges (§3.4/§4.3) — counted as ``merge_commits``. Distinct
        keys guarantee no logical conflict, so no application retries.
        """
        server = self.servers[shard]
        segmap = self.machine.segmap
        failures_before = segmap.cas_failures
        recorder = self.recorder
        merge_span = None
        if recorder.enabled:
            merge_span = recorder.begin("merge_update", parent=batch_span,
                                        shard=shard, staged=len(run))
        staged = []
        for frame, future, _ in run:
            try:
                gen = server.kvp.put_steps(frame.key, frame.payload)
                next(gen)  # stage into the update window
            except Exception as exc:
                self.metrics.server_errors += 1
                _resolve(future, b"SERVER_ERROR %s\r\n"
                         % str(exc).encode("ascii", "replace"))
                continue
            staged.append((gen, future))
        for gen, future in staged:
            try:
                retries = _exhaust(gen)
            except Exception as exc:
                self.metrics.server_errors += 1
                _resolve(future, b"SERVER_ERROR %s\r\n"
                         % str(exc).encode("ascii", "replace"))
                continue
            server.stats.sets += 1
            self.metrics.cas_retries += retries
            _resolve(future, b"STORED\r\n")
        merged = segmap.cas_failures - failures_before
        self.metrics.merge_commits += merged
        if merge_span is not None:
            recorder.end(merge_span, merge_commits=merged)

    def _commit_bulk_sets(self, shard: int, run,
                          batch_span: Optional[int] = None) -> None:
        """Coalesce a run of distinct-key sets into one bulk commit.

        The entire run lands through :meth:`HicampMemcached.set_many` —
        one bottom-up tree rebuild and one root CAS for N keys, instead
        of N staged commits absorbed by merge-update. Repeated keys
        inside the run coalesce to their last occurrence before staging
        (FIFO last-wins, exactly what N sequential sets would leave), so
        hot-key bursts cost one staged write per *unique* key.
        """
        server = self.servers[shard]
        recorder = self.recorder
        last: Dict[bytes, bytes] = {}
        for frame, _, _ in run:
            last[frame.key] = frame.payload
        bulk_span = None
        if recorder.enabled:
            bulk_span = recorder.begin("bulk_commit", parent=batch_span,
                                       shard=shard, staged=len(last),
                                       coalesced=len(run) - len(last))
        try:
            server.set_many(list(last.items()))
        except Exception as exc:
            response = b"SERVER_ERROR %s\r\n" \
                % str(exc).encode("ascii", "replace")
            self.metrics.server_errors += len(run)
            for _, future, _ in run:
                _resolve(future, response)
        else:
            for _, future, _ in run:
                _resolve(future, b"STORED\r\n")
        if bulk_span is not None:
            recorder.end(bulk_span)

    def _apply_one(self, shard: int, frame: Frame, future) -> None:
        try:
            response = self.handlers[shard].handle(frame.raw)
        except Exception as exc:
            self.metrics.server_errors += 1
            response = b"SERVER_ERROR %s\r\n" \
                % str(exc).encode("ascii", "replace")
        _resolve(future, response)

    # ------------------------------------------------------------------
    # stats

    def aggregate_server_stats(self) -> Dict[str, int]:
        """Per-shard operation counters summed across the cache."""
        totals: Dict[str, int] = {}
        for server in self.servers:
            for spec in dataclass_fields(server.stats):
                totals[spec.name] = totals.get(spec.name, 0) \
                    + getattr(server.stats, spec.name)
        totals["curr_items"] = sum(s.item_count() for s in self.servers)
        return totals

    def snapshot(self) -> Dict:
        """JSON-safe snapshot of metrics plus cache-wide state."""
        return self.metrics.snapshot(extra={
            "shards": len(self.servers),
            "pending_commits": self.pending_commits(),
            "footprint_bytes": self.machine.footprint_bytes(),
            "server": self.aggregate_server_stats(),
            "index": self.machine.mem.store.index_snapshot(),
            "reclaim": self.machine.mem.store.reclaim_snapshot(),
            "adaptive": self.controller.snapshot(),
        })

    def stats_response(self, args: List[bytes]) -> bytes:
        """The ``stats`` command: STAT lines, one JSON document, or
        (``stats prom``) the registry's Prometheus text exposition."""
        if args and args[0] == b"json":
            body = json.dumps(self.snapshot(), sort_keys=True).encode()
            return body + CRLF + b"END\r\n"
        if args and args[0] == b"prom":
            return self.registry.exposition().encode() + b"END\r\n"
        lines = [b"STAT %s %s\r\n" % (name.encode(), str(value).encode())
                 for name, value in sorted(
                     self.aggregate_server_stats().items())]
        lines.append(b"STAT shards %d\r\n" % len(self.servers))
        lines.append(b"STAT pending_commits %d\r\n" % self.pending_commits())
        lines.extend(self.metrics.stats_lines())
        lines.append(b"END\r\n")
        return b"".join(lines)


# ----------------------------------------------------------------------


def _completed(response: bytes) -> "asyncio.Future[bytes]":
    future: "asyncio.Future[bytes]" = \
        asyncio.get_running_loop().create_future()
    future.set_result(response)
    return future


def _resolve(future: "asyncio.Future[bytes]", response: bytes) -> None:
    if not future.done():
        future.set_result(response)


def _exhaust(gen) -> int:
    """Drive a put_steps generator to completion; returns its retries."""
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value or 0
