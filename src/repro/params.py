"""Machine configuration for the HICAMP and conventional simulators.

The defaults follow the evaluation setup in section 5 of the paper:
16-byte memory lines, a 4-way 32 KB L1 data cache and a 16-way 4 MB L2,
and a 50 ns DRAM access latency (section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bytes per machine word. PLIDs, tags and data values are all word-sized.
WORD_BYTES = 8

#: Mask for a 64-bit word value.
WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        size_bytes: total capacity of the cache.
        ways: associativity.
        line_bytes: cache line size (must match the memory line size).
    """

    size_bytes: int
    ways: int
    line_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                "cache size %d not divisible by ways*line (%d*%d)"
                % (self.size_bytes, self.ways, self.line_bytes)
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """Configuration of the deduplicated main memory (Figure 2).

    Attributes:
        line_bytes: memory line size in bytes (16, 32 or 64 in the paper).
        num_buckets: number of hash buckets; each bucket models one DRAM row.
        data_ways: data lines per hash bucket (the paper shows twelve
            16-byte data ways per bucket alongside signature and
            reference-count ways).
        overflow_lines: capacity of the shared overflow area used when a
            designated hash bucket is full.
        verify_reads: recompute content hashes on every DRAM read and
            fault on mismatch (section 3.1's intrinsic error detection;
            off by default for speed).
        plid_bytes: encoded size of a PLID inside an interior DAG line.
            The paper sizes PLIDs at 32 bits (footnote 5: "with a 32-byte
            line, a 32-bit PLID is sufficient to access 128 gigabytes"),
            giving an interior fan-out of ``line_bytes / 4`` and a dense
            DAG space overhead of 1/(fanout-1); set 8 to model 64-bit
            PLIDs (the footnote-6 worst case of 2x overhead at 16-byte
            lines).
        index_kind: lookup-by-content resolution path. ``"legacy"`` is
            the paper's Figure-2 organization (in-bucket signature
            compare plus a linear overflow-chain scan); ``"cuckoo"``
            routes lookups through :class:`repro.memory.index.
            CuckooIndex` (XOR partial-key displacement, adaptive
            fingerprint widths, online resize) while keeping physical
            placement — and therefore PLIDs and fingerprints —
            identical.
        index_buckets: initial cuckoo-table buckets (power of two; the
            table doubles online as it fills).
        index_slots: entries per cuckoo bucket.
        index_target_fp_rate: target false-positive full-line-compare
            rate per probe; per-bucket fingerprint widths grow from 6
            toward 16 bits to hold observed density under this rate.
        reclaim_kind: deallocation strategy when a refcount reaches
            zero. ``"immediate"`` is the paper's recursive decrement
            walk (subtree freed inline at the release site, dealloc
            listeners fire immediately); ``"epoch"`` defers the subtree
            walk to :class:`repro.memory.reclaim.EpochReclaimer` — the
            release site is O(1) and the deferred lines drain in
            bounded steps between commit batches, with a synchronous
            ``quiesce()`` restoring immediate-equivalent state for
            audits, persistence and replication.
    """

    line_bytes: int = 16
    num_buckets: int = 1 << 16
    data_ways: int = 12
    overflow_lines: int = 1 << 20
    plid_bytes: int = 4
    verify_reads: bool = False
    index_kind: str = "legacy"
    index_buckets: int = 1 << 10
    index_slots: int = 4
    index_target_fp_rate: float = 0.02
    reclaim_kind: str = "immediate"

    def __post_init__(self) -> None:
        if self.line_bytes % WORD_BYTES:
            raise ValueError("line_bytes must be a multiple of %d" % WORD_BYTES)
        if self.line_bytes < 2 * WORD_BYTES:
            raise ValueError("a line must hold at least two words to form a DAG")
        if self.plid_bytes not in (4, 8):
            raise ValueError("plid_bytes must be 4 or 8")
        if self.index_kind not in ("legacy", "cuckoo"):
            raise ValueError(
                "index_kind must be 'legacy' or 'cuckoo', not %r"
                % (self.index_kind,))
        if self.index_buckets < 2 or self.index_buckets & (self.index_buckets - 1):
            raise ValueError("index_buckets must be a power of two >= 2")
        if not 1 <= self.index_slots <= 8:
            raise ValueError("index_slots must be 1..8")
        if not 0.0 < self.index_target_fp_rate <= 1.0:
            raise ValueError("index_target_fp_rate must be in (0, 1]")
        if self.reclaim_kind not in ("immediate", "epoch"):
            raise ValueError(
                "reclaim_kind must be 'immediate' or 'epoch', not %r"
                % (self.reclaim_kind,))

    @property
    def words_per_line(self) -> int:
        """Number of 64-bit data words in one leaf line."""
        return self.line_bytes // WORD_BYTES

    @property
    def fanout(self) -> int:
        """PLID entries per interior line (the DAG fan-out)."""
        return self.line_bytes // self.plid_bytes


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of a simulated HICAMP machine.

    Attributes:
        memory: deduplicated-DRAM geometry.
        cache: geometry of the HICAMP cache (models the LLC in front of
            the deduplicated DRAM; the paper's L2 parameters by default).
        dram_latency_ns: DRAM access latency used by the analytical
            latency models (50 ns in section 5.1.1).
        path_compaction: enable the path-compaction optimization (Fig. 4a).
        data_compaction: enable the data-compaction optimization (Fig. 4b).
        iterator_registers: number of iterator registers per processor
            ("comparable ... to the number of general-purpose registers",
            section 3.3).
        n_processors: processors sharing the memory system (the paper's
            concurrency analysis assumes an 8-processor system). Each
            processor has its own iterator-register file and transient
            region; the LLC, deduplicated DRAM and segment map are shared.
        cache_hit_ns: on-chip hit latency used by the timing estimator.
    """

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=4 * 1024 * 1024, ways=16, line_bytes=16
        )
    )
    dram_latency_ns: float = 50.0
    cache_hit_ns: float = 2.0
    path_compaction: bool = True
    data_compaction: bool = True
    iterator_registers: int = 32
    n_processors: int = 1

    def __post_init__(self) -> None:
        if self.cache.line_bytes != self.memory.line_bytes:
            raise ValueError(
                "cache line size %d must match memory line size %d"
                % (self.cache.line_bytes, self.memory.line_bytes)
            )

    @classmethod
    def with_line_size(cls, line_bytes: int, **kwargs) -> "MachineConfig":
        """Build a config for a given line size, keeping paper defaults.

        Cache capacity/associativity stay at the paper's 16-way 4 MB; the
        line size is applied to both memory and cache.
        """
        memory = kwargs.pop("memory", MemoryConfig(line_bytes=line_bytes))
        cache = kwargs.pop(
            "cache",
            CacheGeometry(size_bytes=4 * 1024 * 1024, ways=16, line_bytes=line_bytes),
        )
        return cls(memory=memory, cache=cache, **kwargs)


@dataclass(frozen=True)
class ConventionalConfig:
    """Configuration of the conventional (baseline) memory hierarchy.

    Defaults are the paper's: 4-way 32 KB L1 data cache, 16-way 4 MB L2,
    16-byte lines.
    """

    line_bytes: int = 16
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=32 * 1024, ways=4, line_bytes=16
        )
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=4 * 1024 * 1024, ways=16, line_bytes=16
        )
    )
    dram_latency_ns: float = 50.0

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.line_bytes or self.l2.line_bytes != self.line_bytes:
            raise ValueError("L1/L2 line sizes must match the memory line size")

    @classmethod
    def with_line_size(cls, line_bytes: int) -> "ConventionalConfig":
        """Build the paper's baseline hierarchy at a given line size."""
        return cls(
            line_bytes=line_bytes,
            l1=CacheGeometry(size_bytes=32 * 1024, ways=4, line_bytes=line_bytes),
            l2=CacheGeometry(size_bytes=4 * 1024 * 1024, ways=16, line_bytes=line_bytes),
        )
