"""Reusable pytest fixtures for the testing harness.

Kept out of :mod:`repro.testing`'s package namespace so importing the
harness from production code (the ``repro fuzz`` CLI) never imports
pytest. Test suites get everything via the repository ``conftest.py``::

    pytest_plugins = ["repro.testing.fixtures"]

Fixtures:

``machine_audit``
    Callable running every invariant auditor against a machine and
    raising ``AssertionError`` (with the full failure list) on any
    violation. Use at the end of a test that mutated a machine.

``audited_machine``
    A fresh :class:`~repro.core.machine.Machine` that is strict-audited
    at teardown — refcount excesses (leaks) fail the test too, so only
    use it when the test releases everything it allocates.

``fault_plan`` / ``fault_injector``
    Factories for seeded :class:`~repro.testing.faults.FaultPlan` /
    :class:`~repro.testing.faults.FaultInjector` instances.

``history_recorder``
    A fresh :class:`~repro.testing.history.HistoryRecorder`.
"""

from __future__ import annotations

import pytest

from repro.core.machine import Machine
from repro.testing.auditors import AuditReport, audit_machine
from repro.testing.faults import FaultInjector, FaultPlan
from repro.testing.history import HistoryRecorder


@pytest.fixture
def machine_audit():
    """Callable: strict=False audit that raises on any failure."""

    def _audit(machine: Machine, strict: bool = False) -> AuditReport:
        report = audit_machine(machine, strict=strict)
        report.raise_if_failed()
        return report

    return _audit


@pytest.fixture
def audited_machine():
    """A machine that must strict-audit clean when the test ends."""
    machine = Machine()
    yield machine
    audit_machine(machine, strict=True).raise_if_failed()


@pytest.fixture
def fault_plan():
    """Factory for seeded fault plans."""

    def _make(seed: int = 0, rates=None, max_stall: int = 6) -> FaultPlan:
        return FaultPlan(seed, rates, max_stall=max_stall)

    return _make


@pytest.fixture
def fault_injector(fault_plan):
    """Factory for injectors bound to a seeded plan."""

    def _make(seed: int = 0, rates=None,
              max_stall: int = 6) -> FaultInjector:
        return FaultInjector(fault_plan(seed, rates, max_stall))

    return _make


@pytest.fixture
def history_recorder() -> HistoryRecorder:
    return HistoryRecorder()
