"""Seeded adversarial episodes against a live server (``repro fuzz``).

One **episode** is: build a :class:`~repro.testing.faults.FaultPlan`
from the episode seed, start a :class:`~repro.net.server.MemcachedServer`
with the injector wired into every hook point, drive deterministic
scripted clients at it (pipelined mixed traffic over a shared keyspace,
recorded as an operation history), then judge the outcome twice —

* the :mod:`~repro.testing.history` linearizability checker over the
  recorded history (including a final read-back of every key after the
  commit queues drained), and
* the :mod:`~repro.testing.auditors` machine auditors in strict mode
  (the harness holds no snapshots, so any refcount excess is a leak).

**Reproducibility contract**: an episode's *trace* — the fault plan,
the per-client op scripts, and the verdicts — is a pure function of the
episode seed. Client scripts are derived from the seed before any byte
hits a socket; injection decisions are pure functions of
``(seed, point, scope, seq)``; the verdicts are scheduling-independent
on correct code (any legal interleaving is linearizable and every
quiesced machine audits clean). ``repro fuzz --episodes N --seed S``
therefore prints byte-identical output on every run, and a failing
episode prints the single seed that replays it.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.machine import Machine
from repro.net.server import MemcachedServer
from repro.testing.auditors import audit_machine
from repro.testing.faults import CONN_RESET, FaultInjector, FaultPlan
from repro.testing.history import (
    UNMATCHABLE,
    HistoryRecorder,
    check_history,
)

CRLF = b"\r\n"

#: Episode fault rates: the defaults plus occasional injected resets.
EPISODE_RATES = {CONN_RESET: 0.06}

#: Wall-clock ceiling per episode; hitting it is itself a failure.
EPISODE_TIMEOUT = 60.0


@dataclass
class EpisodeConfig:
    """Shape of one adversarial episode (all derived-state seeded)."""

    clients: int = 3
    ops_per_client: int = 24
    pipeline_depth: int = 4
    key_space: int = 8
    shards: int = 2
    batch_limit: int = 4
    max_stall: int = 6
    rates: Optional[Dict[str, float]] = None
    #: fraction of planned sets that carry a seeded small TTL (the
    #: ``expiry`` profile: expired keys must never resurrect, even when
    #: injected commit stalls delay the deleting/storing commits)
    ttl_rate: float = 0.0
    #: alternative backend factory for the server under test (the
    #: ``expiry`` profile runs against ManagedMemcached); None = plain
    backend: Optional[Callable] = None
    #: lookup-by-content index of the machine under test ("legacy" or
    #: "cuckoo"); trace content is index-independent by construction
    index_kind: str = "legacy"
    #: initial cuckoo-table buckets; a deliberately tiny value forces
    #: online resizes to complete *during* the episode (0 = config
    #: default)
    index_buckets: int = 0
    #: reclamation of the machine under test ("immediate" or "epoch").
    #: Episodes quiesce the reclaimer before the machine auditors run
    #: (via the router drain and ``audit_refcounts``'s machine drain),
    #: and trace content is reclaim-kind-independent by construction.
    reclaim_kind: str = "immediate"
    #: router commit strategy of the server under test ("merge", "cas",
    #: "bulk", or "adaptive"). Adaptive episodes run a deliberately
    #: twitchy controller (short window, single-epoch dwell, forced
    #: rotation) so mode switches land mid-episode, under faults, on a
    #: tiny keyspace. Kept out of the episode trace header: trace
    #: content is commit-mode-independent by construction, and the
    #: linearizability + refcount auditors must hold across switches.
    commit_mode: str = "merge"


# ----------------------------------------------------------------------
# scripted clients


def _derive(seed: int, label: str) -> int:
    digest = hashlib.blake2b(b"%d/%s" % (seed, label.encode()),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _build_script(seed: int, cid: int,
                  cfg: EpisodeConfig) -> List[List[Tuple[str, bytes]]]:
    """Plan one client's batches of (kind, key) before the episode runs.

    Pure function of the seed — the scripts are part of the episode
    trace. ``cas`` is only planned for keys the plan has already
    ``gets``-ed, so every cas has a deterministic source for its token.
    With ``ttl_rate`` set, a planned set may become ``setx<N>`` — a set
    carrying TTL ``N`` (in the managed backend's logical ticks).
    """
    rng = random.Random(_derive(seed, "script/%d" % cid))
    tokened = set()
    ops: List[Tuple[str, bytes]] = []
    for _ in range(cfg.ops_per_client):
        key = b"k%02d" % rng.randrange(cfg.key_space)
        roll = rng.random()
        if roll < 0.40:
            kind = "set"
            if cfg.ttl_rate and rng.random() < cfg.ttl_rate:
                kind = "setx%d" % rng.randrange(1, 9)
        elif roll < 0.65:
            kind = "get"
        elif roll < 0.80:
            kind = "gets"
            tokened.add(key)
        elif roll < 0.92 and tokened:
            kind = "cas"
            key = sorted(tokened)[rng.randrange(len(tokened))]
        else:
            kind = "delete"
        ops.append((kind, key))
    return [ops[i:i + cfg.pipeline_depth]
            for i in range(0, len(ops), cfg.pipeline_depth)]


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """One response line; an injected reset can cut it anywhere."""
    line = await reader.readline()
    if not line.endswith(CRLF):
        raise ConnectionResetError("EOF mid-response")
    return line


async def _read_values(
        reader: asyncio.StreamReader
) -> Dict[bytes, Tuple[bytes, bytes]]:
    """A get/gets response: key -> (value, wire token or b"").

    Unlike the loadgen helper, EOF at any point raises
    :class:`ConnectionResetError` — under fault injection a reset can
    land mid-response, and the interrupted ops must stay *pending*
    rather than crash the episode.
    """
    values: Dict[bytes, Tuple[bytes, bytes]] = {}
    while True:
        line = await _read_line(reader)
        if line == b"END" + CRLF:
            return values
        if not line.startswith(b"VALUE "):
            raise ValueError("unexpected line in value response: %r" % line)
        parts = line.split()
        key, nbytes = parts[1], int(parts[3])
        token = parts[4] if len(parts) > 4 else b""
        block = await reader.readexactly(nbytes + len(CRLF))
        values[key] = (block[:-len(CRLF)], token)


def script_digest(script: List[List[Tuple[str, bytes]]]) -> str:
    material = b";".join(b"%s %s" % (kind.encode(), key)
                         for batch in script for kind, key in batch)
    return hashlib.blake2b(material, digest_size=6).hexdigest()


class RecordingClient:
    """Drives one scripted connection and records its history."""

    def __init__(self, cid: int, host: str, port: int,
                 script: List[List[Tuple[str, bytes]]],
                 recorder: HistoryRecorder) -> None:
        self.cid = cid
        self.host, self.port = host, port
        self.script = script
        self.recorder = recorder
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.protocol_errors: List[str] = []
        self._seq = 0
        self._value_seq = 0
        # key -> (wire token bytes, the value the token was read from)
        self._tokens: Dict[bytes, Tuple[bytes, bytes]] = {}

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)

    def _fresh_value(self) -> bytes:
        self._value_seq += 1
        return b"v%d.%d" % (self.cid, self._value_seq)

    def _encode(self, kind: str, key: bytes):
        """Wire bytes plus recorder fields for one planned op: returns
        ``(wire, recorded kind, value, expect, ttl)`` — a planned
        ``setx<N>`` goes on the wire as a set with exptime N and is
        recorded as a ``set`` with ``ttl=N``."""
        if kind == "set" or kind.startswith("setx"):
            ttl = int(kind[4:]) if kind.startswith("setx") else 0
            value = self._fresh_value()
            return (b"set %s 0 %d %d\r\n%s\r\n"
                    % (key, ttl, len(value), value),
                    "set", value, None, ttl)
        if kind == "cas":
            value = self._fresh_value()
            token, expect = self._tokens.get(key, (b"0", UNMATCHABLE))
            return (b"cas %s 0 0 %d %s\r\n%s\r\n"
                    % (key, len(value), token, value),
                    "cas", value, expect, 0)
        return (b"%s %s\r\n" % (kind.encode(), key), kind, None, None, 0)

    async def _consume(self, op) -> None:
        """Read and record one op's response; raises on disconnect."""
        assert self.reader is not None
        if op.kind in ("get", "gets"):
            values = await _read_values(self.reader)
            if op.key in values:
                value, token = values[op.key]
                if op.kind == "gets":
                    self._tokens[op.key] = (token, value)
                self.recorder.complete(op, ("value", value))
            else:
                self.recorder.complete(op, ("miss",))
            return
        line = await _read_line(self.reader)
        mapped = {b"STORED" + CRLF: ("stored",),
                  b"NOT_STORED" + CRLF: ("not_stored",),
                  b"EXISTS" + CRLF: ("exists",),
                  b"NOT_FOUND" + CRLF: ("not_found",),
                  b"DELETED" + CRLF: ("deleted",)}.get(line)
        if mapped is None:
            if line.startswith((b"CLIENT_ERROR", b"SERVER_ERROR",
                                b"ERROR")):
                self.protocol_errors.append(
                    "c%d %s %r -> %r" % (self.cid, op.kind, op.key, line))
                mapped = ("error", line)
            else:
                raise ValueError("unparseable response %r" % line)
        self.recorder.complete(op, mapped)

    async def run(self) -> None:
        assert self.reader is not None and self.writer is not None
        try:
            for batch in self.script:
                ops = []
                parts = []
                for kind, key in batch:
                    wire, recorded, value, expect, ttl = \
                        self._encode(kind, key)
                    parts.append(wire)
                    ops.append(self.recorder.invoke(
                        self.cid, self._seq, recorded, key,
                        value=value, expect=expect, ttl=ttl))
                    self._seq += 1
                self.writer.write(b"".join(parts))
                await self.writer.drain()
                for op in ops:
                    await self._consume(op)
            self.writer.write(b"quit\r\n")
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            # injected reset: every op still awaiting a response stays
            # pending — the checker treats its commit as "maybe landed"
            pass
        finally:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except Exception:
                pass


async def _final_readback(host: str, port: int, cfg: EpisodeConfig,
                          recorder: HistoryRecorder) -> None:
    """Read every key on a fresh connection after the queues drained.

    These reads are real-time after every completed client op, so they
    pin down which pending (reset) commits actually landed.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        ops = []
        parts = []
        for j in range(cfg.key_space):
            key = b"k%02d" % j
            parts.append(b"get %s\r\n" % key)
            ops.append(recorder.invoke(10_000, j, "get", key))
        writer.write(b"".join(parts))
        await writer.drain()
        for op in ops:
            values = await _read_values(reader)
            if op.key in values:
                recorder.complete(op, ("value", values[op.key][0]))
            else:
                recorder.complete(op, ("miss",))
        writer.write(b"quit\r\n")
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


# ----------------------------------------------------------------------
# episodes


@dataclass
class EpisodeResult:
    seed: int
    ok: bool
    trace: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: fired-fault counts by point (CONN_RESET is keyed by write-frame
    #: sequence, so its count is seed-deterministic; the timing-keyed
    #: points need not be — this is debug data, never part of ``trace``)
    fired: Dict[str, int] = field(default_factory=dict)
    #: end-of-episode DedupStore.index_snapshot() — like ``fired``,
    #: debug data outside the seed-deterministic ``trace`` (resize and
    #: migration progress depend on operation timing)
    index: Dict = field(default_factory=dict)
    #: end-of-episode DedupStore.reclaim_snapshot() — debug data too
    #: (drain timing depends on batch boundaries, never on the trace)
    reclaim: Dict = field(default_factory=dict)


async def _run_episode(seed: int, cfg: EpisodeConfig,
                       trace_recorder=None) -> EpisodeResult:
    rates = dict(EPISODE_RATES)
    if cfg.rates:
        rates.update(cfg.rates)
    plan = FaultPlan(seed, rates, max_stall=cfg.max_stall)
    injector = FaultInjector(plan)
    if (cfg.index_kind != "legacy" or cfg.index_buckets
            or cfg.reclaim_kind != "immediate"):
        from repro.params import MachineConfig, MemoryConfig
        mem_kwargs = {"index_kind": cfg.index_kind,
                      "reclaim_kind": cfg.reclaim_kind}
        if cfg.index_buckets:
            mem_kwargs["index_buckets"] = cfg.index_buckets
        machine = Machine(MachineConfig(memory=MemoryConfig(**mem_kwargs)))
    else:
        machine = Machine()
    backend_kwargs = {} if cfg.backend is None \
        else {"backend_factory": cfg.backend}
    if cfg.commit_mode != "merge":
        backend_kwargs["commit_mode"] = cfg.commit_mode
        if cfg.commit_mode == "adaptive":
            from repro.net.adaptive import AdaptiveConfig
            # twitchy on purpose: rotation forces a strategy handoff
            # every few controller epochs even when the tiny episode
            # workload would never cross a policy threshold
            backend_kwargs["adaptive_config"] = AdaptiveConfig(
                window=2, dwell_epochs=1, rotate_every=3)
    server = MemcachedServer(
        port=0, machine=machine, shard_count=cfg.shards,
        batch_limit=cfg.batch_limit, injector=injector,
        recorder=trace_recorder, **backend_kwargs)
    recorder = HistoryRecorder()
    scripts = [_build_script(seed, cid, cfg) for cid in range(cfg.clients)]

    trace = ["episode seed=%d clients=%d ops=%d pipeline=%d keys=%d "
             "shards=%d batch_limit=%d"
             % (seed, cfg.clients, cfg.ops_per_client, cfg.pipeline_depth,
                cfg.key_space, cfg.shards, cfg.batch_limit)]
    trace.extend(plan.describe())
    for cid, script in enumerate(scripts):
        trace.append("script c%d=%s" % (cid, script_digest(script)))

    failures: List[str] = []
    await server.start()
    try:
        clients = [RecordingClient(cid, "127.0.0.1", server.port,
                                   script, recorder)
                   for cid, script in enumerate(scripts)]
        for client in clients:  # sequential: deterministic accept order
            await client.connect()
        await asyncio.wait_for(
            asyncio.gather(*(client.run() for client in clients)),
            timeout=EPISODE_TIMEOUT)
        await asyncio.wait_for(server.router.drain(),
                               timeout=EPISODE_TIMEOUT)
        await asyncio.wait_for(_final_readback(
            "127.0.0.1", server.port, cfg, recorder),
            timeout=EPISODE_TIMEOUT)
        for client in clients:
            failures.extend("protocol error: %s" % err
                            for err in client.protocol_errors)
    except asyncio.TimeoutError:
        failures.append("episode timed out after %.0fs" % EPISODE_TIMEOUT)
    finally:
        await server.shutdown()

    report = check_history(recorder.operations())
    if not report.ok:
        for verdict in report.violations:
            failures.append("linearizability violation on key %r: %s"
                            % (verdict.key, verdict.explanation))
            failures.extend("  " + line for line in verdict.witness)
    trace.append("linearizable=%s" % ("yes" if report.ok else "NO"))

    # quiesce-then-audit: the reclaim snapshot is captured before the
    # auditors quiesce so it reflects the episode's live drain behaviour
    reclaim_snap = machine.mem.store.reclaim_snapshot()
    audit = audit_machine(machine, strict=True)
    failures.extend("audit: " + f for f in audit.failures)
    trace.append("audits=%s" % ("ok" if audit.ok else "FAILED"))

    if server.metrics.pending_at_shutdown:
        failures.append("pending commits at shutdown: %d"
                        % server.metrics.pending_at_shutdown)

    ok = not failures
    trace.append("result=%s" % ("ok" if ok else "FAILED"))
    return EpisodeResult(seed=seed, ok=ok, trace=trace, failures=failures,
                         fired=dict(injector.fired),
                         index=machine.mem.store.index_snapshot(),
                         reclaim=reclaim_snap)


def episode_seed(seed: int, index: int) -> int:
    """Seed of episode ``index`` in a run started from ``seed``.

    Episode 0 uses the run seed itself, so a failure printed as
    ``--episodes 1 --seed S`` replays exactly.
    """
    return seed if index == 0 else _derive(seed, "episode/%d" % index)


@dataclass
class FuzzReport:
    """Outcome of a whole fuzz run."""

    episodes: List[EpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def failed_seeds(self) -> List[int]:
        return [e.seed for e in self.episodes if not e.ok]

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for result in self.episodes:
            if verbose or not result.ok:
                lines.extend(result.trace)
                lines.extend("  " + f for f in result.failures)
            else:
                lines.append("%s %s" % (result.trace[0],
                                        result.trace[-1]))
        lines.append("fuzz episodes=%d ok=%d failed=%d"
                     % (len(self.episodes),
                        sum(1 for e in self.episodes if e.ok),
                        len(self.failed_seeds)))
        for seed in self.failed_seeds:
            lines.append("reproduce: repro fuzz --episodes 1 --seed %d"
                         % seed)
        return "\n".join(lines)


def run_episode(seed: int, cfg: Optional[EpisodeConfig] = None,
                trace_recorder=None) -> EpisodeResult:
    """One episode, synchronously (test entry point).

    ``trace_recorder`` — an optional :class:`repro.obs.TraceRecorder`
    threaded into the server, so a whole fault-injected episode can be
    captured as spans. With a :class:`repro.obs.StepClock` and a single
    client the trace is a pure function of the seed.
    """
    return asyncio.run(_run_episode(seed, cfg or EpisodeConfig(),
                                    trace_recorder=trace_recorder))


def run_fuzz(episodes: int = 10, seed: int = 0,
             cfg: Optional[EpisodeConfig] = None) -> FuzzReport:
    """Run ``episodes`` seeded adversarial episodes."""
    cfg = cfg or EpisodeConfig()
    report = FuzzReport()
    for index in range(episodes):
        report.episodes.append(
            asyncio.run(_run_episode(episode_seed(seed, index), cfg)))
    return report


def expiry_config(**overrides) -> EpisodeConfig:
    """The ``expiry`` profile: TTL'd sets against a ManagedMemcached
    backend under raised commit-stall rates.

    Half the planned sets carry a small TTL in the managed backend's
    logical clock; stalls delay commits past expiry deadlines. The
    TTL-aware checker spec then enforces the regression this profile
    exists for: an expired key may only come back via a recorded store,
    never by a stale commit resurrecting dead state.
    """
    from repro.apps.memcached.eviction import ManagedMemcached
    from repro.testing.faults import COMMIT_STALL

    defaults: Dict = dict(
        ttl_rate=0.5, backend=ManagedMemcached,
        rates={CONN_RESET: 0.06, COMMIT_STALL: 0.30})
    defaults.update(overrides)
    return EpisodeConfig(**defaults)
