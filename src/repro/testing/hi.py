"""Differential history-independence verification (``repro fuzz
--profile hi``).

HICAMP's canonical DAG makes a structure's representation a pure
function of its logical contents — so **history independence** (Attiya
et al., "History-Independent Concurrent Objects") is not a design
aspiration here but a checkable invariant: two executions that reach
the same logical state must produce *byte-identical* roots, identical
machine-independent ``segment_fingerprint``\\ s, and identical
unique-line footprints, no matter how their operations were ordered,
batched, merged, or memoized.

This module checks exactly that, differentially. A seeded **workload**
is a list of operations over one structure (HMap, ShardedHMap,
HSortedMap, HOrderedCollection, QuadTreeMatrix) with puts/inserts *and*
deletes. A **schedule** re-executes the workload on a fresh machine
under a seeded transformation that preserves only the per-key operation
order (operations on distinct keys commute logically — the same
partition argument the linearizability checker rests on):

* **permuted** — a seeded interleaving of the per-key streams, applied
  one operation at a time;
* **batched** — the same interleaving chopped at seeded boundaries,
  each run of puts landing as one ``put_many`` bulk commit (one tree
  rebuild + one root swap instead of N);
* **staged** — runs of distinct-key puts staged concurrently through
  ``put_steps`` and committed in a *different* seeded order, so later
  commits lose their CAS and are absorbed by merge-update (§3.4);

and every odd schedule runs with the structural memo enabled, so the
memoized hot paths are differentially pinned to the plain ones. After
each schedule the machine is drained, fingerprinted, audited
(:func:`~repro.testing.auditors.audit_machine` in strict mode), then
the structure is dropped and the footprint must return to the
machine's baseline — history independence of *reclamation*.

Any divergence is shrunk to a minimal operation list (greedy delta
reduction re-running only the two disagreeing schedules) and reported
with the single seed that replays it.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.segments.segment_map import SegmentFlags
from repro.structures.hmap import HMap
from repro.structures.hmap_sharded import ShardedHMap
from repro.structures.hmatrix import float_to_word, sz_index
from repro.structures.hordered import HOrderedCollection
from repro.structures.hsorted import HSortedMap
from repro.testing.auditors import audit_machine

#: The workload structures a ``hi`` episode sweeps.
STRUCTURES = ("hmap", "sharded", "hsorted", "hordered", "hmatrix")

#: Ceiling on schedule re-executions the shrinker may spend per
#: divergence (keeps a pathological failure from stalling the run).
SHRINK_BUDGET = 200


@dataclass
class HIConfig:
    """Shape of one history-independence episode (all seeded)."""

    structures: Sequence[str] = STRUCTURES
    schedules: int = 20             # permuted/interleaved re-executions
    keys: int = 16                  # distinct keys/timestamps/cells
    ops: int = 48                   # operations per workload
    value_pool: int = 6             # distinct value contents (dedup food)
    delete_ratio: float = 0.25
    shard_bits: int = 2             # ShardedHMap fan-out
    matrix_size: int = 32           # QuadTreeMatrix dimension (pow 2)
    #: lookup-by-content index of the machines the schedules run on;
    #: the observations must be identical under either kind (the index
    #: is proven an implementation detail by the cross-kind tests)
    index_kind: str = "legacy"
    #: initial cuckoo-table buckets (0 = config default); tiny values
    #: force online resizes during the schedules
    index_buckets: int = 0
    #: reclamation kind of the schedule machines ("immediate" or
    #: "epoch"); every observation point drains the machine first,
    #: which quiesces the reclaimer, so fingerprints/footprints must be
    #: identical under either kind
    reclaim_kind: str = "immediate"


def _derive(seed: int, label: str) -> int:
    digest = hashlib.blake2b(b"%d/%s" % (seed, label.encode()),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


# ----------------------------------------------------------------------
# workload generation: normalized ops with per-key streams


def generate_workload(seed: int, structure: str,
                      cfg: Optional[HIConfig] = None) -> List[Tuple]:
    """The seeded operation list for ``structure``.

    Ops are normalized tuples — ``("put", key, value)`` /
    ``("delete", key)`` for the maps, ``("insert", ts, payload)`` /
    ``("delete", ts)`` for the ordered collection, ``("set", row, col,
    value)`` for the matrix (0.0 = delete). The *final logical state*
    is the fold of each key's stream, so any schedule preserving
    per-key order must land on identical canonical form.
    """
    cfg = cfg or HIConfig()
    rng = random.Random(_derive(seed, "workload/%s" % structure))
    values = [b"value-%d-" % i * (1 + 3 * (i % 3))
              for i in range(cfg.value_pool)]
    ops: List[Tuple] = []
    for _ in range(cfg.ops):
        slot = rng.randrange(cfg.keys)
        deleting = rng.random() < cfg.delete_ratio
        if structure == "hordered":
            ts = 1 + slot * 977          # sparse timestamps
            if deleting:
                ops.append(("delete", ts))
            else:
                ops.append(("insert", ts, values[rng.randrange(
                    cfg.value_pool)]))
        elif structure == "hmatrix":
            row = slot % cfg.matrix_size
            col = (slot * 7 + 3) % cfg.matrix_size
            value = 0.0 if deleting \
                else float(1 + rng.randrange(cfg.value_pool))
            ops.append(("set", row, col, value))
        else:
            key = b"key-%03d" % slot
            if deleting:
                ops.append(("delete", key))
            else:
                ops.append(("put", key,
                            values[rng.randrange(cfg.value_pool)]))
    return ops


def _stream_id(op: Tuple):
    """The commuting-unit a schedule must keep ordered internally."""
    if op[0] in ("put", "delete", "insert"):
        return op[1]
    return (op[1], op[2])  # matrix cell


def interleave(ops: Sequence[Tuple], seed: int,
               index: int) -> List[Tuple]:
    """Schedule ``index``: a seeded interleaving of the per-key streams.

    Schedule 0 is the workload's own order (the reference execution).
    """
    if index == 0:
        return list(ops)
    rng = random.Random(_derive(seed, "schedule/%d" % index))
    streams: Dict[object, List[Tuple]] = {}
    order: List[object] = []
    for op in ops:
        sid = _stream_id(op)
        if sid not in streams:
            streams[sid] = []
            order.append(sid)
        streams[sid].append(op)
    out: List[Tuple] = []
    live = list(order)
    cursors = {sid: 0 for sid in order}
    while live:
        sid = live[rng.randrange(len(live))]
        stream = streams[sid]
        out.append(stream[cursors[sid]])
        cursors[sid] += 1
        if cursors[sid] == len(stream):
            live.remove(sid)
    return out


# ----------------------------------------------------------------------
# schedule execution


@dataclass
class Observation:
    """Everything history independence says must match across schedules."""

    fingerprints: Tuple[str, ...] = ()
    footprint_lines: int = 0
    footprint_bytes: int = 0
    audit_failures: List[str] = field(default_factory=list)
    teardown_clean: bool = True

    def divergence(self, other: "Observation") -> Optional[str]:
        """First mismatch against the reference, or None."""
        if self.fingerprints != other.fingerprints:
            return ("fingerprints %s != reference %s"
                    % (list(self.fingerprints), list(other.fingerprints)))
        if (self.footprint_lines, self.footprint_bytes) != \
                (other.footprint_lines, other.footprint_bytes):
            return ("footprint %d lines/%d bytes != reference "
                    "%d lines/%d bytes"
                    % (self.footprint_lines, self.footprint_bytes,
                       other.footprint_lines, other.footprint_bytes))
        return None


def _apply_map(target, schedule, mode: str, rng) -> None:
    """Apply a map schedule sequentially, batched, or merge-staged."""
    if mode == "sequential":
        for op in schedule:
            if op[0] == "put":
                target.put(op[1], op[2])
            else:
                target.delete(op[1])
        return
    pending = list(schedule)
    while pending:
        run: List[Tuple] = []
        limit = 1 + rng.randrange(6) if mode == "batched" else 4
        while pending and pending[0][0] == "put" and len(run) < limit:
            if mode == "staged" and any(op[1] == pending[0][1]
                                        for op in run):
                break  # staged runs need distinct keys (no conflicts)
            run.append(pending.pop(0))
        if len(run) > 1 and mode == "batched":
            target.put_many([(op[1], op[2]) for op in run])
        elif len(run) > 1:
            # stage every put against the same snapshot, then commit in
            # a seeded order: every commit after the first loses its CAS
            # and is absorbed by merge-update
            gens = [target.put_steps(op[1], op[2]) for op in run]
            for gen in gens:
                next(gen)
            rng.shuffle(gens)
            for gen in gens:
                for _ in gen:
                    pass
        elif run:
            target.put(run[0][1], run[0][2])
        else:
            op = pending.pop(0)
            target.delete(op[1])


def _execute(structure: str, schedule: Sequence[Tuple], mode: str,
             memo: bool, rng_seed: int, cfg: HIConfig) -> Observation:
    """One schedule on a fresh machine; returns its observation."""
    if (cfg.index_kind != "legacy" or cfg.index_buckets
            or cfg.reclaim_kind != "immediate"):
        from repro.params import MachineConfig, MemoryConfig
        mem_kwargs = {"index_kind": cfg.index_kind,
                      "reclaim_kind": cfg.reclaim_kind}
        if cfg.index_buckets:
            mem_kwargs["index_buckets"] = cfg.index_buckets
        machine = Machine(MachineConfig(memory=MemoryConfig(**mem_kwargs)))
    else:
        machine = Machine()
    if memo:
        machine.mem.memo.enable()
    baseline = (machine.footprint_lines(), machine.footprint_bytes())
    rng = random.Random(rng_seed)
    obs = Observation()

    if structure == "hmatrix":
        vsid = machine.create_segment([], flags=SegmentFlags.NONE)
        # fixed logical geometry (what from_coo sets), so the canonical
        # height is schedule-independent
        size = cfg.matrix_size
        machine.segmap.entry(vsid).length = size * size
        pending = [op for op in schedule]
        while pending:
            chunk = 1 if mode == "sequential" else 1 + rng.randrange(6)
            updates: Dict[int, int] = {}
            for op in pending[:chunk]:
                updates[sz_index(op[1], op[2], size)] = \
                    float_to_word(op[3])
            del pending[:chunk]
            machine.write_words(vsid, updates)
        vsids = [vsid]
        drop = lambda: machine.drop_segment(vsid)  # noqa: E731
    elif structure == "hordered":
        coll = HOrderedCollection.create(machine)
        for op in schedule:
            if op[0] == "insert":
                coll.insert(op[1], op[2])
            else:
                coll.delete(op[1])
        vsids = [coll.vsid]
        drop = coll.drop
    else:
        if structure == "hmap":
            target = HMap.create(machine)
            vsids_of = lambda: [target.vsid]  # noqa: E731
        elif structure == "sharded":
            target = ShardedHMap.create(machine,
                                        shard_bits=cfg.shard_bits)
            vsids_of = lambda: [s.vsid for s in target.shards]  # noqa: E731
        elif structure == "hsorted":
            target = HSortedMap.create(machine)
            vsids_of = lambda: [target.kvp.vsid,  # noqa: E731
                                target.index_vsid]
        else:
            raise ValueError("unknown structure %r" % structure)
        effective = mode
        if structure == "hsorted" and mode != "sequential":
            effective = "sequential"  # no bulk/staged path on HSorted
        _apply_map(target, schedule, effective, rng)
        vsids = vsids_of()
        drop = target.drop

    machine.drain()
    obs.fingerprints = tuple(
        machine.segment_fingerprint(v).hex() for v in vsids)
    obs.footprint_lines = machine.footprint_lines()
    obs.footprint_bytes = machine.footprint_bytes()
    audit = audit_machine(machine, strict=True)
    obs.audit_failures = list(audit.failures)
    drop()
    machine.drain()
    obs.teardown_clean = (
        (machine.footprint_lines(), machine.footprint_bytes()) == baseline)
    return obs


def _schedule_mode(structure: str, index: int) -> str:
    if structure in ("hordered",):
        return "sequential" if index % 2 == 0 else "batched"
    return ("sequential", "batched", "staged")[index % 3]


def _run_schedule(seed: int, structure: str, ops: Sequence[Tuple],
                  index: int, cfg: HIConfig) -> Observation:
    schedule = interleave(ops, seed, index)
    mode = _schedule_mode(structure, index)
    memo = index % 2 == 1
    return _execute(structure, schedule, mode, memo,
                    _derive(seed, "exec/%s/%d" % (structure, index)), cfg)


# ----------------------------------------------------------------------
# verification + shrinking


@dataclass
class StructureVerdict:
    structure: str
    ok: bool
    schedules: int
    fingerprints: Tuple[str, ...] = ()
    failures: List[str] = field(default_factory=list)
    minimal_ops: Optional[List[Tuple]] = None


def _shrink(seed: int, structure: str, ops: List[Tuple], index: int,
            cfg: HIConfig) -> List[Tuple]:
    """Greedy delta reduction: drop ops while the two schedules still
    disagree. Per-key order is preserved by construction (removal
    never reorders)."""
    budget = [SHRINK_BUDGET]

    def diverges(candidate: List[Tuple]) -> bool:
        if budget[0] <= 0 or not candidate:
            return False
        budget[0] -= 2
        reference = _run_schedule(seed, structure, candidate, 0, cfg)
        other = _run_schedule(seed, structure, candidate, index, cfg)
        return (other.divergence(reference) is not None
                or bool(other.audit_failures)
                or not other.teardown_clean)

    current = list(ops)
    shrunk = True
    while shrunk and budget[0] > 0:
        shrunk = False
        for at in range(len(current) - 1, -1, -1):
            candidate = current[:at] + current[at + 1:]
            if diverges(candidate):
                current = candidate
                shrunk = True
    return current


def verify_structure(seed: int, structure: str,
                     cfg: Optional[HIConfig] = None) -> StructureVerdict:
    """Run every schedule of one structure's workload and compare."""
    cfg = cfg or HIConfig()
    ops = generate_workload(seed, structure, cfg)
    reference = _run_schedule(seed, structure, ops, 0, cfg)
    verdict = StructureVerdict(structure=structure, ok=True,
                               schedules=cfg.schedules,
                               fingerprints=reference.fingerprints)
    if reference.audit_failures:
        verdict.ok = False
        verdict.failures.extend("reference audit: " + f
                                for f in reference.audit_failures)
    if not reference.teardown_clean:
        verdict.ok = False
        verdict.failures.append("reference teardown leaked lines")
    for index in range(1, cfg.schedules):
        observed = _run_schedule(seed, structure, ops, index, cfg)
        problems = []
        mismatch = observed.divergence(reference)
        if mismatch is not None:
            problems.append("schedule %d (%s%s): %s"
                            % (index, _schedule_mode(structure, index),
                               "+memo" if index % 2 else "", mismatch))
        problems.extend("schedule %d audit: %s" % (index, f)
                        for f in observed.audit_failures)
        if not observed.teardown_clean:
            problems.append("schedule %d teardown leaked lines" % index)
        if problems:
            verdict.ok = False
            verdict.failures.extend(problems)
            if verdict.minimal_ops is None:
                verdict.minimal_ops = _shrink(seed, structure, ops,
                                              index, cfg)
                verdict.failures.append(
                    "minimal repro (%d ops): %r"
                    % (len(verdict.minimal_ops), verdict.minimal_ops))
    return verdict


# ----------------------------------------------------------------------
# episodes (the fuzz-runner face)


@dataclass
class HIEpisodeResult:
    seed: int
    ok: bool
    trace: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)


@dataclass
class HIReport:
    """Outcome of a whole ``--profile hi`` run."""

    episodes: List[HIEpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def failed_seeds(self) -> List[int]:
        return [e.seed for e in self.episodes if not e.ok]

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for result in self.episodes:
            if verbose or not result.ok:
                lines.extend(result.trace)
                lines.extend("  " + f for f in result.failures)
            else:
                lines.append("%s %s" % (result.trace[0],
                                        result.trace[-1]))
        lines.append("hi episodes=%d ok=%d failed=%d"
                     % (len(self.episodes),
                        sum(1 for e in self.episodes if e.ok),
                        len(self.failed_seeds)))
        for seed in self.failed_seeds:
            lines.append("reproduce: repro fuzz --profile hi "
                         "--episodes 1 --seed %d" % seed)
        return "\n".join(lines)


def run_hi_episode(seed: int,
                   cfg: Optional[HIConfig] = None) -> HIEpisodeResult:
    """One episode: verify every configured structure under one seed."""
    cfg = cfg or HIConfig()
    trace = ["hi seed=%d structures=%d schedules=%d keys=%d ops=%d"
             % (seed, len(cfg.structures), cfg.schedules, cfg.keys,
                cfg.ops)]
    failures: List[str] = []
    for structure in cfg.structures:
        verdict = verify_structure(seed, structure, cfg)
        digest = hashlib.blake2b(
            "/".join(verdict.fingerprints).encode(),
            digest_size=6).hexdigest()
        trace.append("  %-8s schedules=%d roots=%s %s"
                     % (structure, verdict.schedules, digest,
                        "ok" if verdict.ok else "DIVERGED"))
        failures.extend("%s: %s" % (structure, f)
                        for f in verdict.failures)
    ok = not failures
    trace.append("result=%s" % ("ok" if ok else "FAILED"))
    return HIEpisodeResult(seed=seed, ok=ok, trace=trace,
                           failures=failures)


def episode_seed(seed: int, index: int) -> int:
    """Seed of episode ``index`` (episode 0 replays the run seed)."""
    return seed if index == 0 else _derive(seed, "episode/%d" % index)


def run_hi(episodes: int = 4, seed: int = 0,
           cfg: Optional[HIConfig] = None) -> HIReport:
    """Run ``episodes`` seeded history-independence episodes."""
    cfg = cfg or HIConfig()
    report = HIReport()
    for index in range(episodes):
        report.episodes.append(
            run_hi_episode(episode_seed(seed, index), cfg))
    return report
