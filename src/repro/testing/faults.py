"""Seeded, deterministic fault injection for the serving stack.

Every injection decision is a **pure function of the seed** — no RNG
state is consumed at runtime, so the decision for the Nth event at a
given hook point is the same no matter how the event loop interleaves
connections and shard workers. A :class:`FaultPlan` answers "does fault
``point`` fire for scope ``s`` at sequence number ``n``, and how hard?"
by hashing ``(seed, point, scope, n)``; a :class:`FaultInjector` owns
the per-scope counters and performs the actual injections from the hook
points in :class:`~repro.net.server.MemcachedServer` and
:class:`~repro.net.router.ShardRouter`:

========================  ==============================================
``conn.reset``            drop the connection right after a write frame
                          was dispatched — the commit is enqueued but
                          the response is never flushed ("reset
                          mid-commit"); keyed by per-connection write-
                          frame sequence, so *which* writes lose their
                          connection is reproducible
``read.split``            deliver only a prefix of a socket read now and
                          the rest on the next read — partial reads
                          through the frame decoder
``write.split``           flush a response in two separate writes with a
                          drain between them — partial writes
``flush.delay``           yield the event loop N extra times before
                          flushing a connection's responses
``commit.stall``          stall a shard worker N event-loop turns before
                          it applies a drained batch — commits stay
                          queued while snapshot reads proceed
========================  ==============================================

Scopes are small integers: the accept-order connection index for the
connection points, the shard index for ``commit.stall``.
"""

from __future__ import annotations

import asyncio
import hashlib
from collections import Counter
from typing import Dict, List, Optional

CONN_RESET = "conn.reset"
READ_SPLIT = "read.split"
WRITE_SPLIT = "write.split"
FLUSH_DELAY = "flush.delay"
COMMIT_STALL = "commit.stall"

POINTS = (CONN_RESET, READ_SPLIT, WRITE_SPLIT, FLUSH_DELAY, COMMIT_STALL)

#: Default per-event firing probabilities for a fuzz episode.
DEFAULT_RATES: Dict[str, float] = {
    CONN_RESET: 0.0,        # off unless an episode asks for resets
    READ_SPLIT: 0.25,
    WRITE_SPLIT: 0.2,
    FLUSH_DELAY: 0.2,
    COMMIT_STALL: 0.25,
}


class InjectedReset(ConnectionResetError):
    """A connection reset injected by the fault plan (not the peer)."""


def _unit(seed: int, point: str, scope: object, seq: int,
          salt: str = "") -> float:
    """Deterministic value in [0, 1) for one potential injection event."""
    material = b"%d|%s|%s|%d|%s" % (
        seed, point.encode(), str(scope).encode(), seq, salt.encode())
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """The seed's answer sheet: which events fire, and how hard.

    Stateless and hashable by construction — two plans built from the
    same ``(seed, rates, max_stall)`` make identical decisions forever,
    which is what makes a fuzz episode's schedule reproducible from its
    seed alone.
    """

    def __init__(self, seed: int, rates: Optional[Dict[str, float]] = None,
                 max_stall: int = 6) -> None:
        self.seed = seed
        self.rates = dict(DEFAULT_RATES)
        if rates:
            unknown = set(rates) - set(POINTS)
            if unknown:
                raise ValueError("unknown fault points: %s" % sorted(unknown))
            self.rates.update(rates)
        self.max_stall = max(1, max_stall)

    def fires(self, point: str, scope: object, seq: int) -> bool:
        """Does the ``seq``-th event of ``point``/``scope`` inject?"""
        rate = self.rates.get(point, 0.0)
        return rate > 0.0 and _unit(self.seed, point, scope, seq) < rate

    def amount(self, point: str, scope: object, seq: int,
               lo: int, hi: int) -> int:
        """Deterministic magnitude in ``[lo, hi]`` for a fired event."""
        if hi <= lo:
            return lo
        u = _unit(self.seed, point, scope, seq, salt="amount")
        return lo + int(u * (hi - lo + 1))

    def describe(self) -> List[str]:
        """Stable one-line-per-point summary (part of an episode trace)."""
        lines = ["plan seed=%d max_stall=%d" % (self.seed, self.max_stall)]
        for point in POINTS:
            lines.append("plan rate %s=%.3f" % (point, self.rates[point]))
        return lines


class FaultInjector:
    """Executes a :class:`FaultPlan` from the serving-stack hook points.

    Owns the per-scope event counters and the carry-over buffers for
    split reads. One injector serves one server instance; passing
    ``injector=None`` (the default everywhere) keeps every hook a no-op.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: Counter = Counter()
        self.events: List[str] = []  # debugging aid; not a trace contract
        self._counters: Counter = Counter()
        self._held: Dict[int, bytes] = {}
        self._connections = 0

    # ------------------------------------------------------------------
    # bookkeeping

    def next_connection(self) -> int:
        """Accept-order scope for a newly accepted connection."""
        scope = self._connections
        self._connections += 1
        return scope

    def _next_seq(self, point: str, scope: object) -> int:
        key = (point, scope)
        seq = self._counters[key]
        self._counters[key] = seq + 1
        return seq

    def _record(self, point: str, scope: object, seq: int,
                detail: str = "") -> None:
        self.fired[point] += 1
        self.events.append("%s scope=%s seq=%d %s"
                           % (point, scope, seq, detail))

    # ------------------------------------------------------------------
    # connection-side hooks (MemcachedServer)

    def held_bytes(self, scope: int) -> bytes:
        """Bytes held back by an earlier split read, delivered first."""
        return self._held.pop(scope, b"")

    def on_read(self, scope: int, data: bytes) -> bytes:
        """Maybe split one socket read: keep a suffix for the next read."""
        if len(data) < 2:
            return data
        seq = self._next_seq(READ_SPLIT, scope)
        if not self.plan.fires(READ_SPLIT, scope, seq):
            return data
        cut = self.plan.amount(READ_SPLIT, scope, seq, 1, len(data) - 1)
        self._held[scope] = data[cut:]
        self._record(READ_SPLIT, scope, seq, "cut=%d of %d"
                     % (cut, len(data)))
        return data[:cut]

    def after_dispatch(self, scope: int, command: bytes) -> None:
        """Maybe reset the connection right after a dispatched write.

        The commit is already enqueued on its shard; raising here tears
        the connection down before its response is flushed — the
        "connection reset mid-commit" scenario. Keyed by the connection's
        write-frame sequence so the decision is independent of how the
        bytes were chunked on the wire.
        """
        seq = self._next_seq(CONN_RESET, scope)
        if self.plan.fires(CONN_RESET, scope, seq):
            self._record(CONN_RESET, scope, seq, "after %s"
                         % command.decode("ascii", "replace"))
            raise InjectedReset("injected reset after write %d" % seq)

    async def before_flush(self, scope: int) -> None:
        """Maybe delay a response flush by extra event-loop turns."""
        seq = self._next_seq(FLUSH_DELAY, scope)
        if self.plan.fires(FLUSH_DELAY, scope, seq):
            turns = self.plan.amount(FLUSH_DELAY, scope, seq, 1,
                                     self.plan.max_stall)
            self._record(FLUSH_DELAY, scope, seq, "turns=%d" % turns)
            for _ in range(turns):
                await asyncio.sleep(0)

    def split_write(self, scope: int, payload: bytes) -> List[bytes]:
        """Maybe split one response into two separate socket writes."""
        if len(payload) < 2:
            return [payload]
        seq = self._next_seq(WRITE_SPLIT, scope)
        if not self.plan.fires(WRITE_SPLIT, scope, seq):
            return [payload]
        cut = self.plan.amount(WRITE_SPLIT, scope, seq, 1, len(payload) - 1)
        self._record(WRITE_SPLIT, scope, seq, "cut=%d of %d"
                     % (cut, len(payload)))
        return [payload[:cut], payload[cut:]]

    # ------------------------------------------------------------------
    # shard-worker hook (ShardRouter)

    async def before_commit(self, shard: int) -> None:
        """Maybe stall a shard worker before it applies a batch."""
        seq = self._next_seq(COMMIT_STALL, shard)
        if self.plan.fires(COMMIT_STALL, shard, seq):
            turns = self.plan.amount(COMMIT_STALL, shard, seq, 1,
                                     self.plan.max_stall)
            self._record(COMMIT_STALL, shard, seq, "turns=%d" % turns)
            for _ in range(turns):
                await asyncio.sleep(0)
