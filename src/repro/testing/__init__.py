"""Deterministic adversarial testing for the serving stack.

The paper's §5.1.1 concurrency-safety claims — snapshot reads need no
locks, lost CAS races are absorbed by merge-update — are only credible
under a checker that replays adversarial concurrent histories. This
package is that checker, in three layers:

* :mod:`repro.testing.faults` — a seeded, deterministic **fault
  injector** wrapped around the asyncio server and shard router:
  connection resets mid-commit, partial reads/writes, delayed flushes,
  commit-queue stalls, all decided by a pure function of the seed;
* :mod:`repro.testing.history` — a **linearizability checker** over
  per-client operation histories against the memcached sequential
  specification (content-unique CAS tokens and merge-update's
  commutative distinct-key set semantics modeled explicitly);
* :mod:`repro.testing.auditors` — **invariant auditors** for the
  machine underneath: dedup-store refcounts, line signatures and
  content-uniqueness, segment-map root validity.

:mod:`repro.testing.fuzz` composes them into seeded adversarial
episodes (the ``repro fuzz`` CLI subcommand),
:mod:`repro.testing.hi` verifies **history independence**
differentially — permuted/batched/merge-staged schedules of one seeded
workload must produce byte-identical canonical roots, fingerprints and
footprints (``repro fuzz --profile hi``) — and
:mod:`repro.testing.fixtures` exposes the auditors and injector as
reusable pytest fixtures.
"""

from repro.testing.auditors import (
    AuditReport,
    audit_dedup,
    audit_machine,
    audit_refcounts,
    audit_segment_map,
)
from repro.testing.faults import (
    COMMIT_STALL,
    CONN_RESET,
    FLUSH_DELAY,
    READ_SPLIT,
    WRITE_SPLIT,
    FaultInjector,
    FaultPlan,
    InjectedReset,
)
from repro.testing.fuzz import (
    EpisodeConfig,
    EpisodeResult,
    FuzzReport,
    episode_seed,
    expiry_config,
    run_episode,
    run_fuzz,
)
from repro.testing.hi import (
    HIConfig,
    HIEpisodeResult,
    HIReport,
    generate_workload,
    run_hi,
    run_hi_episode,
    verify_structure,
)
from repro.testing.history import (
    UNMATCHABLE,
    HistoryRecorder,
    LinearizabilityReport,
    Operation,
    check_history,
)

__all__ = [
    "AuditReport", "audit_dedup", "audit_machine", "audit_refcounts",
    "audit_segment_map",
    "COMMIT_STALL", "CONN_RESET", "FLUSH_DELAY", "READ_SPLIT",
    "WRITE_SPLIT", "FaultInjector", "FaultPlan", "InjectedReset",
    "EpisodeConfig", "EpisodeResult", "FuzzReport", "episode_seed",
    "expiry_config", "run_episode", "run_fuzz",
    "HIConfig", "HIEpisodeResult", "HIReport", "generate_workload",
    "run_hi", "run_hi_episode", "verify_structure",
    "UNMATCHABLE", "HistoryRecorder", "LinearizabilityReport",
    "Operation", "check_history",
]
