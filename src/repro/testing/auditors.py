"""Machine-level invariant auditors.

After any workload — and especially after an adversarial fuzz episode —
the HICAMP machine underneath the cache must still satisfy the
architecture's structural invariants. Each auditor returns a list of
human-readable failure strings (empty means clean); ``audit_machine``
bundles them into one :class:`AuditReport`.

* :func:`audit_refcounts` — hardware reference counting (§3.1): every
  line's stored refcount covers its in-memory references (line words
  plus segment-map roots); in ``strict`` mode any *excess* is reported
  too, which catches leaked references in a quiesced machine where the
  auditor's caller holds no snapshots or iterators of its own.
* :func:`audit_dedup` — content-unique storage: every live line's
  signature verifies (§3.1 error detection) and no two live lines hold
  identical content (the dedup property that makes root comparison a
  content compare).
* :func:`audit_segment_map` — VSID translation (§2.3): every mapped
  root is the zero entry, an inline pack, or a live PLID with a
  positive refcount; lengths fit the entry's height; every segment is
  readable end to end; and each root is the **canonical form** of its
  own content (rebuilding the segment's words reproduces the root,
  bit for bit).
* :func:`audit_index` — the lookup-by-content index (legacy bucket maps
  or the cuckoo table) is exactly reconstructible from the live lines:
  every live line is reachable under its *current* content, no stale or
  duplicate entries exist, and cuckoo entries sit in one of their two
  candidate buckets. The canonical-form audit stays the oracle; this
  proves the index adds no state of its own.

Auditors are read-mostly: the canonical-form rebuild allocates through
the dedup store and releases everything it allocated, leaving the
footprint unchanged on a healthy machine.

**Quiesce-then-audit:** under ``MemoryConfig.reclaim_kind="epoch"``
released-to-zero lines stay resident until the reclaimer drains, which
would trip the refcount auditor's non-positive-count check. The drain
at the top of :func:`audit_refcounts` goes through
:meth:`repro.memory.system.MemorySystem.drain`, which quiesces the
reclaimer first — so every audit observes quiesced, immediate-
equivalent state regardless of the configured kind, and the auditors
remain the oracle for the reclamation subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.machine import Machine
from repro.errors import IntegrityError
from repro.memory.line import (
    PlidRef,
    encode_line,
    is_zero_line,
    line_child_plids,
)
from repro.segments import dag


@dataclass
class AuditReport:
    """Combined outcome of the machine auditors."""

    failures: List[str] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if self.failures:
            raise AssertionError(
                "machine audit failed (%d):\n  %s"
                % (len(self.failures), "\n  ".join(self.failures)))

    def summary(self) -> str:
        return ("audits=ok checks=%d" % self.checks if self.ok
                else "audits=FAILED failures=%d" % len(self.failures))


def _map_root_refs(machine: Machine) -> Dict[int, int]:
    """References on PLIDs held by segment-map entries (weak aliases
    own no reference and are skipped)."""
    segmap = machine.segmap
    refs: Dict[int, int] = {}
    for vsid in segmap.live_vsids():
        if vsid in segmap._weak_target:
            continue
        root = segmap._entries[vsid].root
        if isinstance(root, PlidRef):
            refs[root.plid] = refs.get(root.plid, 0) + 1
    return refs


def audit_refcounts(machine: Machine, strict: bool = False) -> List[str]:
    """Check stored refcounts against actual in-memory references.

    Every stored count must cover the references from line words plus
    segment-map roots; with ``strict`` (a quiesced machine, no caller-
    held snapshots/iterators) a count *above* that is a leak and is
    reported as well.
    """
    # quiesce deferred reclamation, then spill the deferred RC cache
    machine.drain()
    store = machine.mem.store
    reclaimer = store.reclaimer
    if reclaimer is not None and reclaimer.pending():
        return ["reclaim: %d deferred lines survived quiesce"
                % reclaimer.pending()]
    internal: Dict[int, int] = {}
    for line in store._lines.values():
        for child in line_child_plids(line):
            internal[child] = internal.get(child, 0) + 1
    external = _map_root_refs(machine)
    failures = []
    for plid in store.live_plids():
        held = internal.get(plid, 0) + external.get(plid, 0)
        rc = store.refcount(plid)
        if rc < held:
            failures.append(
                "refcount: PLID %d counts %d but %d references exist "
                "(%d line words + %d map roots)"
                % (plid, rc, held, internal.get(plid, 0),
                   external.get(plid, 0)))
        elif strict and rc > held:
            failures.append(
                "refcount leak: PLID %d counts %d but only %d references "
                "exist" % (plid, rc, held))
        if rc <= 0:
            failures.append(
                "refcount: live PLID %d has non-positive count %d"
                % (plid, rc))
    return failures


def audit_dedup(machine: Machine) -> List[str]:
    """Check line signatures and the content-uniqueness of live lines."""
    store = machine.mem.store
    failures = []
    seen: Dict[bytes, int] = {}
    for plid in store.live_plids():
        try:
            store.verify_line(plid)
        except IntegrityError as exc:
            failures.append("signature: PLID %d: %s" % (plid, exc))
            continue
        line = store._lines[plid]
        if is_zero_line(line):
            failures.append(
                "dedup: PLID %d is an all-zero line (must be entry 0)"
                % plid)
            continue
        content = encode_line(line)
        other = seen.setdefault(content, plid)
        if other != plid:
            failures.append(
                "dedup: PLIDs %d and %d hold identical content"
                % (other, plid))
    return failures


#: Segments at most this long are rebuilt word-by-word; longer (sparse)
#: segments — the HMap keys content into a huge index space — are
#: rebuilt from their non-zero words only.
DENSE_REBUILD_LIMIT = 4096


def audit_segment_map(machine: Machine) -> List[str]:
    """Check root validity, lengths, readability, and canonical form."""
    segmap, mem, store = machine.segmap, machine.mem, machine.mem.store
    live = set(store.live_plids())
    failures = []
    for vsid in segmap.live_vsids():
        entry = segmap.entry(vsid)
        root = entry.root
        if isinstance(root, PlidRef):
            if root.plid not in live:
                failures.append(
                    "segmap: VSID %d root PLID %d is not a live line"
                    % (vsid, root.plid))
                continue
            if store.refcount(root.plid) < 1:
                failures.append(
                    "segmap: VSID %d root PLID %d has refcount %d"
                    % (vsid, root.plid, store.refcount(root.plid)))
        if entry.length > dag.entry_capacity(mem, entry.height):
            failures.append(
                "segmap: VSID %d length %d exceeds height-%d capacity %d"
                % (vsid, entry.length, entry.height,
                   dag.entry_capacity(mem, entry.height)))
            continue
        if vsid in segmap._weak_target:
            continue  # a mirror of its target; the target is audited
        try:
            if entry.length <= DENSE_REBUILD_LIMIT:
                words = machine.read_segment(vsid)
                if len(words) != entry.length:
                    failures.append(
                        "segmap: VSID %d read %d words, map says %d"
                        % (vsid, len(words), entry.length))
                    continue
                rebuilt, height = dag.build_segment(mem, words)
                if height < entry.height:
                    rebuilt = dag.grow_entry(mem, rebuilt, height,
                                             entry.height)
                    height = entry.height
            else:
                # sparse: walking the non-zero words is the readability
                # check, and rebuilding from them the canonicality check
                nonzero = dict(dag.iter_nonzero(mem, root, entry.height))
                rebuilt = dag.write_words_bulk(mem, 0, entry.height,
                                               nonzero)
                height = entry.height
        except Exception as exc:  # any read failure is a finding
            failures.append("segmap: VSID %d unreadable: %s" % (vsid, exc))
            continue
        canonical = (height == entry.height and
                     dag.entry_key(rebuilt) == dag.entry_key(root))
        dag.release_entry(mem, rebuilt)
        if not canonical:
            failures.append(
                "segmap: VSID %d root is not the canonical form of its "
                "content" % vsid)
    return failures


def audit_index(machine: Machine) -> List[str]:
    """Check the lookup-by-content index against the live lines.

    Delegates to :meth:`repro.memory.dedup_store.DedupStore.
    index_failures`, which derives the expected index from each line's
    actual stored content — so the index is proven reconstructible, and
    a silently corrupted line shows up here as well as in
    :func:`audit_dedup`.
    """
    return machine.mem.store.index_failures()


def audit_machine(machine: Machine, strict: bool = False) -> AuditReport:
    """Run every auditor; ``strict`` enables refcount-leak detection."""
    report = AuditReport()
    store = machine.mem.store
    for failures in (audit_refcounts(machine, strict=strict),
                     audit_dedup(machine),
                     audit_segment_map(machine),
                     audit_index(machine)):
        report.failures.extend(failures)
    report.checks = len(store.live_plids()) + len(machine.segmap)
    return report
