"""Linearizability checking for memcached operation histories.

The load generator (or the fuzz harness's recording clients) logs every
operation with a **logical invocation/completion timestamp** drawn from
one shared counter; this module decides whether the whole history is
linearizable against the memcached sequential specification.

The check is per key: operations on distinct keys commute, which is not
an approximation here but the design itself — the router's batched
merge-update path only ever merges commits on *distinct* keys (§3.4:
no logical conflict, so a lost CAS is absorbed rather than retried),
and per-key operations are serialized by the owning shard's FIFO commit
queue. Modeling merge-update therefore costs nothing beyond the key
partition: the commutative set-merge is invisible at the level of
single-key sequential semantics.

The order the checker must respect is the memcached contract, which is
*stronger* than plain real-time linearizability:

* **real time**: op A precedes op B when A completed before B was
  invoked (logical timestamps);
* **per-connection program order**: a connection's operations take
  effect in submission order even when pipelined — a ``get`` pipelined
  behind a ``set`` of the same key must observe it (the router's
  read-after-write fence).

CAS tokens are content identities (a HICAMP root compare), so token
equality is value equality: a recorded ``cas`` carries the *value* its
token was read from (``expect``), and the spec says it stores exactly
when the register still holds that value.

Operations whose response was never observed (connection reset before
the reply — "reset mid-commit") are **pending**: the checker may
linearize their effect at any point after invocation, or drop them,
matching the reality that an enqueued commit may or may not have landed
from the client's point of view.

**TTL expiry** extends the register: state is ``None`` (absent) or a
``(value, expirable)`` pair, where ``expirable`` records that the store
which produced the value carried a non-zero TTL. An expirable value may
*spontaneously* transition to ``None`` at any linearization point (the
checker does not model wall-clock deadlines — any expiry schedule the
server's logical clock produces is admissible), but the transition is
one-way: once expired, the key can only return by way of another
recorded store. A value observed after expiry with no store to explain
it — a **resurrected** key, e.g. a stalled commit re-applying dead
state — is therefore a violation, which is exactly the regression the
``expiry`` fuzz profile hunts. Histories without TTLs never mark a
register expirable, so the spec is unchanged for them.

The per-key search is the classic Wing & Gill algorithm with
memoization on (resolved-operation set, register state); distinct
written values keep it effectively linear in practice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: ``expect`` marker for a cas whose token cannot match any value (the
#: client fabricated it after a missed gets); such a cas never stores.
UNMATCHABLE = object()

#: Node-expansion budget per key. Pure function of the history, so a
#: given history always yields the same verdict; sized far above what
#: distinct-value workloads ever need.
SEARCH_BUDGET = 500_000

Result = Tuple  # ("stored",) | ("value", v) | ("miss",) | ...


@dataclass
class Operation:
    """One client-observed operation in a concurrent history."""

    client: int
    seq: int                      # per-client program order
    kind: str                     # set | get | gets | cas | delete | add
    key: bytes
    value: Optional[bytes] = None   # the written value (set/add/cas)
    expect: object = None           # cas: value its token was read from
    invoked: int = 0                # logical timestamps (shared counter)
    completed: Optional[int] = None  # None -> pending (no response seen)
    result: Optional[Result] = None  # None -> pending
    ttl: int = 0                    # store TTL; non-zero -> may expire

    @property
    def pending(self) -> bool:
        return self.completed is None


class HistoryRecorder:
    """Collects operations with logical timestamps from one shared clock.

    Single-threaded asyncio gives the counter a total order for free:
    ``invoke`` stamps the operation when its bytes are written,
    ``complete`` when its response has been parsed.
    """

    def __init__(self) -> None:
        self._clock = itertools.count()
        self.ops: List[Operation] = []

    def tick(self) -> int:
        """One logical timestamp (exposed for interleaving tests)."""
        return next(self._clock)

    def invoke(self, client: int, seq: int, kind: str, key: bytes,
               value: Optional[bytes] = None,
               expect: object = None, ttl: int = 0) -> Operation:
        op = Operation(client=client, seq=seq, kind=kind, key=key,
                       value=value, expect=expect, invoked=self.tick(),
                       ttl=ttl)
        self.ops.append(op)
        return op

    def complete(self, op: Operation, result: Result) -> None:
        op.completed = self.tick()
        op.result = result

    def operations(self) -> List[Operation]:
        return list(self.ops)


# ----------------------------------------------------------------------
# the sequential specification


_FAIL = object()

#: Register state is ``None`` (absent) or ``(value, expirable)`` — the
#: stored bytes plus whether the store that produced them carried a TTL
#: (an expirable value may spontaneously expire to ``None``; see the
#: module docstring). Kept hashable: states are memoization keys.
Register = Optional[Tuple[bytes, bool]]


def _stored(op: Operation) -> Register:
    return (op.value, bool(op.ttl))


def _step(reg: Register, op: Operation, result: Result):
    """Apply ``op`` with observed ``result`` to register state ``reg``.

    Returns the next register state, or ``_FAIL`` when the observed
    result is impossible in state ``reg``.
    """
    kind = result[0]
    if op.kind == "set":
        if kind == "stored":
            return _stored(op)
        return reg  # an errored set has no effect
    if op.kind == "add":
        if kind == "stored":
            return _stored(op) if reg is None else _FAIL
        if kind == "not_stored":
            return reg if reg is not None else _FAIL
        return reg
    if op.kind in ("get", "gets"):
        if kind == "value":
            return reg if reg is not None and reg[0] == result[1] \
                else _FAIL
        if kind == "miss":
            return reg if reg is None else _FAIL
        return reg
    if op.kind == "cas":
        if kind == "stored":
            if reg is not None and op.expect is not UNMATCHABLE \
                    and reg[0] == op.expect:
                return _stored(op)
            return _FAIL
        if kind == "exists":
            if reg is not None and (op.expect is UNMATCHABLE
                                    or reg[0] != op.expect):
                return reg
            return _FAIL
        if kind == "not_found":
            return reg if reg is None else _FAIL
        return reg
    if op.kind == "delete":
        if kind == "deleted":
            return None if reg is not None else _FAIL
        if kind == "not_found":
            return reg if reg is None else _FAIL
        return reg
    raise ValueError("unknown operation kind %r" % op.kind)


def _pending_effect(reg: Register, op: Operation):
    """The state change if a pending op's lost commit actually landed.

    Returns the new register state, or ``None``-marker ``_FAIL`` when
    the op could not have taken effect in ``reg`` (in which case
    skipping it is the only branch — a failed cas/delete is a no-op).
    """
    if op.kind in ("set",):
        return _stored(op)
    if op.kind == "add":
        return _stored(op) if reg is None else _FAIL
    if op.kind == "cas":
        if reg is not None and op.expect is not UNMATCHABLE \
                and reg[0] == op.expect:
            return _stored(op)
        return _FAIL
    if op.kind == "delete":
        return None if reg is not None else _FAIL
    return _FAIL  # pending reads carry no information


# ----------------------------------------------------------------------
# the per-key search


@dataclass
class KeyVerdict:
    key: bytes
    ok: bool
    ops: int
    explanation: str = ""
    witness: List[str] = field(default_factory=list)


@dataclass
class LinearizabilityReport:
    """Outcome of checking one history."""

    verdicts: List[KeyVerdict] = field(default_factory=list)
    checked_ops: int = 0

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violations(self) -> List[KeyVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def summary(self) -> str:
        if self.ok:
            return ("linearizable: %d ops over %d keys"
                    % (self.checked_ops, len(self.verdicts)))
        bad = self.violations
        return "NOT linearizable: %d violating key(s), first %r: %s" % (
            len(bad), bad[0].key, bad[0].explanation)


def _describe(op: Operation) -> str:
    return "c%d#%d %s %s val=%r expect=%r result=%r [%s,%s]%s" % (
        op.client, op.seq, op.kind, op.key.decode("ascii", "replace"),
        op.value, "<none>" if op.expect is UNMATCHABLE else op.expect,
        op.result, op.invoked,
        "pending" if op.pending else op.completed,
        " ttl=%d" % op.ttl if op.ttl else "")


def _check_key(key: bytes, ops: Sequence[Operation],
               initial: Register) -> KeyVerdict:
    n = len(ops)
    if n == 0:
        return KeyVerdict(key=key, ok=True, ops=0)
    # precedence masks: preds[j] has bit i set when op i must be
    # linearized (or, for pending ops, explicitly dropped) before op j
    preds = [0] * n
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i == j:
                continue
            if a.completed is not None and a.completed < b.invoked:
                preds[j] |= 1 << i
            elif a.client == b.client and a.seq < b.seq:
                preds[j] |= 1 << i
    completed_mask = 0
    for i, op in enumerate(ops):
        if not op.pending:
            completed_mask |= 1 << i
    all_done = completed_mask

    seen = set()
    budget = [SEARCH_BUDGET]

    def search(resolved: int, reg: Register) -> bool:
        if resolved & all_done == all_done:
            return True
        state = (resolved, reg)
        if state in seen or budget[0] <= 0:
            return False
        seen.add(state)
        budget[0] -= 1
        # spontaneous expiry: an expirable value may vanish at any
        # linearization point — one-way, so a later observation of it
        # needs a store to explain it (no resurrection)
        if reg is not None and reg[1] and search(resolved, None):
            return True
        for i in range(n):
            bit = 1 << i
            if resolved & bit or (preds[i] & ~resolved):
                continue
            op = ops[i]
            if op.pending:
                effect = _pending_effect(reg, op)
                if effect is not _FAIL and search(resolved | bit, effect):
                    return True
                if search(resolved | bit, reg):  # lost commit never landed
                    return True
            else:
                nxt = _step(reg, op, op.result)
                if nxt is not _FAIL and search(resolved | bit, nxt):
                    return True
        return False

    if search(0, initial):
        return KeyVerdict(key=key, ok=True, ops=n)
    explanation = ("no linearization of %d ops explains the observed "
                   "responses" % n)
    if budget[0] <= 0:
        explanation = "search budget exhausted over %d ops" % n
    witness = [_describe(op) for op in
               sorted(ops, key=lambda o: (o.invoked,))]
    return KeyVerdict(key=key, ok=False, ops=n, explanation=explanation,
                      witness=witness)


def check_history(ops: Sequence[Operation],
                  initial: Optional[Dict[bytes, bytes]] = None
                  ) -> LinearizabilityReport:
    """Check a whole multi-key history; see the module docstring."""
    initial = initial or {}
    by_key: Dict[bytes, List[Operation]] = {}
    for op in ops:
        by_key.setdefault(op.key, []).append(op)
    report = LinearizabilityReport(checked_ops=len(ops))
    for key in sorted(by_key):
        start = initial.get(key)
        report.verdicts.append(_check_key(
            key, by_key[key],
            None if start is None else (start, False)))
    return report
