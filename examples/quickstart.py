#!/usr/bin/env python
"""Quickstart: the HICAMP memory model in five minutes.

Demonstrates the architecture's core behaviours from section 2:
content-unique segments, O(1) structural equality, copy-on-write
snapshots, iterator registers with transient writes, and non-blocking
atomic update via CAS on the segment map.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.structures import HArray, HString


def main() -> None:
    machine = Machine()

    # --- content-unique segments (section 2.2) -------------------------
    a = HString.create(machine, b"This is a long string containing Another string")
    lines_before = machine.footprint_lines()
    b = HString.create(machine, b"This is a long string containing Another string")
    print("two equal strings, extra lines allocated:",
          machine.footprint_lines() - lines_before)  # 0 — one DAG
    print("equality is a root compare:", a.equals(b))

    # --- O(1) compare regardless of size --------------------------------
    big1 = HArray.create(machine, list(range(100_000)))
    big2 = HArray.create(machine, list(range(100_000)))
    print("100k-word arrays equal (single compare):", big1.equals(big2))

    # --- copy-on-write snapshots (the free "pass a stable version") ----
    data = machine.create_segment([10, 20, 30, 40])
    snap = machine.snapshot(data)
    machine.write_word(data, 0, 99)
    print("segment now:", machine.read_segment(data))
    print("snapshot still:", snap.words())
    snap.release()

    # --- iterator registers + atomic commit (sections 3.3, 2.2) --------
    it = machine.iterator(data)
    it.put(1000, offset=2)          # transient line, private to the register
    print("uncommitted, others see:", machine.read_word(data, 2))
    it.try_commit()                 # CAS of the new root into the map
    print("committed, others see:", machine.read_word(data, 2))
    machine.release_iterator(it)

    # --- lost race: CAS fails, nothing is corrupted ---------------------
    it1 = machine.iterator(data)
    it2 = machine.iterator(data)
    it1.put(1, offset=0)
    it2.put(2, offset=1)
    print("first commit:", it1.try_commit())    # True
    print("second commit:", it2.try_commit())   # False — lost the race
    machine.release_iterator(it1)
    machine.release_iterator(it2)

    # --- sparse arrays are compact automatically (section 4.1) ---------
    sparse = machine.create_segment([0] * 8)
    machine.write_word(sparse, 1_000_000, 7)  # a million-element array...
    entry = machine.segmap.entry(sparse)
    from repro.segments import dag
    print("lines used by the million-word sparse array:",
          dag.count_unique_lines(machine.mem, [entry.root]))

    print("\nDRAM traffic so far:", machine.dram.as_dict())


if __name__ == "__main__":
    main()
