#!/usr/bin/env python
"""The paper's motivating scenario: many web-server clients sharing
database state without IPC, locks, or copies (intro + section 4.4).

A products/orders database lives in HICAMP memory. Query results are
*views* — segments of references into the base rows (4 words per result,
whatever the row size). Client snapshots never tear, and a multi-table
checkout transaction commits all-or-nothing.

Run:  python examples/web_database.py
"""

from repro import Machine
from repro.apps.webdb import Database
from repro.concurrency import Scheduler


def main() -> None:
    machine = Machine()
    db = Database(machine)
    products = db.create_table("products", ["title", "price", "stock"])
    orders = db.create_table("orders", ["user", "product", "qty"])

    for i in range(20):
        products.insert(b"p%02d" % i, {
            "title": b"widget mk-%d" % i,
            "price": b"%d" % (5 + i),
            "stock": b"%d" % (10 + i % 3),
        })

    # --- a query is a view of references, not a copy --------------------
    cheap = db.query("products",
                     lambda key, row: int(row["price"]) < 10)
    print("query 'price < 10' matched %d products; the view itself is "
          "only %d words" % (len(cheap), cheap.footprint_words()))

    # --- snapshot-consistent readers while writers commit ---------------
    audit_totals = []

    def stock_auditor():
        view = db.query("products", lambda k, r: True)
        yield
        total = sum(int(r["stock"]) for _, r in view.rows())
        audit_totals.append(total)

    def shopper(name, product):
        row = products.get(product)
        yield
        txn = db.begin()
        txn.insert("orders", b"order-%s" % name,
                   {"user": name, "product": product, "qty": b"1"})
        txn.insert("products", product, {
            "title": row["title"], "price": row["price"],
            "stock": b"%d" % (int(row["stock"]) - 1),
        })
        committed = txn.commit()
        yield
        return committed

    sched = Scheduler(seed=9)
    sched.spawn("audit", stock_auditor())
    sched.spawn("alice", shopper(b"alice", b"p01"))
    sched.spawn("bella", shopper(b"bella", b"p07"))
    sched.run()
    print("auditor saw a consistent pre-checkout stock total:",
          audit_totals[0])
    print("orders on file:", sorted(k for k, _ in orders.rows()))
    print("checkout commits:", sched.results()["alice"],
          sched.results()["bella"])

    # --- fault isolation: a crashed client leaves no partial state ------
    def crasher():
        txn = db.begin()
        txn.insert("orders", b"order-evil",
                   {"user": b"eve", "product": b"p00", "qty": b"999"})
        yield
        raise RuntimeError("client dies before commit")

    sched2 = Scheduler()
    sched2.spawn("evil", crasher())
    try:
        sched2.run()
    except RuntimeError:
        pass
    print("after client crash, phantom order present?",
          orders.get(b"order-evil") is not None)

    print("\nDRAM traffic:", machine.dram.as_dict())


if __name__ == "__main__":
    main()
