#!/usr/bin/env python
"""Memcached on HICAMP (section 4.4) vs the conventional implementation.

Loads a synthetic Facebook-page corpus into both servers, replays the
same power-law request trace, and reports the paper's two metrics:
off-chip DRAM accesses (Figure 6) and memory footprint (Table 1's
compaction), plus a demonstration of snapshot-isolated reads.

Run:  python examples/memcached_demo.py
"""

from repro.apps.memcached import HicampMemcached
from repro.apps.memcached.harness import figure6_row
from repro.apps.memcached.compaction import measure_compaction
from repro.core.machine import Machine
from repro.workloads.traces import generate_workload


def main() -> None:
    workload = generate_workload("facebook", n_requests=300, seed=3,
                                 n_items=60)
    print("workload: %d items preloaded, %d requests (%.0f%% gets)"
          % (len(workload.preload), len(workload.requests),
             100 * workload.get_fraction))

    # --- Figure 6: DRAM accesses ----------------------------------------
    print("\nDRAM accesses for the request phase:")
    for line_bytes in (16, 32, 64):
        row = figure6_row(workload, line_bytes)
        conv, hic = row["conventional"], row["hicamp"]
        print("  LS=%2d  conventional=%7d   hicamp=%7d   (%.2fx)"
              % (line_bytes, conv.dram.total(), hic.dram.total(),
                 hic.dram.total() / conv.dram.total()))
        print("         hicamp breakdown: %s" % hic.dram.as_dict())

    # --- Table 1: compaction --------------------------------------------
    print("\nData compaction (conventional bytes / HICAMP bytes):")
    result = measure_compaction(workload.corpus, 16)
    print("  %d items, %d KB raw -> %d KB in HICAMP: %.2fx"
          % (result.n_items, result.conventional_bytes // 1024,
             result.hicamp_bytes // 1024, result.compaction))

    # --- the API, and snapshot-isolated reads ---------------------------
    machine = Machine()
    server = HicampMemcached(machine)
    server.set(b"user:42", b'{"name": "ada", "visits": 1}')
    server.add(b"user:42", b"ignored")          # add fails: key exists
    print("\nget:", server.get(b"user:42"))

    value, token = server.gets(b"user:42")
    server.set(b"user:42", b'{"name": "ada", "visits": 2}')
    print("cas with stale token:", server.cas(b"user:42", b"x", token))

    server.set(b"counter", b"10")
    print("incr:", server.incr(b"counter", 5))  # 15

    # a reader's snapshot is immune to concurrent updates
    snapshot = machine.snapshot(server.kvp.vsid)
    server.delete(b"user:42")
    print("after delete, live map sees:", server.get(b"user:42"))
    print("a reader's pre-delete snapshot is unaffected (snapshot pinned)")
    snapshot.release()
    print("server stats:", server.stats)


if __name__ == "__main__":
    main()
