#!/usr/bin/env python
"""Sparse matrices on HICAMP (section 5.2): quad-tree storage, symmetric
sharing, and SpMV memory traffic vs a conventional CSR kernel.

Run:  python examples/sparse_matrix_spmv.py
"""

import numpy as np

from repro.apps.spmv import spmv_comparison
from repro.apps.spmv.kernels import spmv_machine
from repro.structures import QuadTreeMatrix
from repro.workloads.matrices import fem_2d, matrix_suite, patterned_block


def main() -> None:
    # --- symmetric sharing: A12 and A21^T become one sub-DAG ------------
    machine = spmv_machine()
    spec = fem_2d(24, "demo-fem")
    qt = QuadTreeMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
    print("FEM Laplacian %dx%d, nnz=%d" % (spec.n, spec.m, spec.nnz))
    print("  quad-tree lines: %d (%.1f KB; CSR would need %.1f KB)"
          % (qt.footprint_lines(), qt.footprint_bytes() / 1024,
             spec.csr_bytes() / 1024))

    # correctness: same y as a dense multiply
    x = np.linspace(0.0, 1.0, spec.m)
    dense = qt.to_dense()
    assert np.allclose(qt.spmv(x), dense @ x)
    print("  SpMV matches dense multiply: OK")

    # --- an extreme self-similar matrix (the paper's 4000x outlier) -----
    machine2 = spmv_machine()
    pat = patterned_block(512, "demo-circulant")
    qp = QuadTreeMatrix.from_coo(machine2, pat.n, pat.m, pat.entries)
    print("\nblock-circulant 512x512, nnz=%d" % pat.nnz)
    print("  quad-tree stores it in %d lines (%.1f KB vs %.1f KB CSR)"
          % (qp.footprint_lines(), qp.footprint_bytes() / 1024,
             pat.csr_bytes() / 1024))

    # --- the Figure 7 measurement on a few suite matrices ---------------
    print("\nSpMV off-chip accesses, HICAMP vs conventional CSR:")
    for spec in matrix_suite()[:6]:
        hicamp, conv = spmv_comparison(spec)
        print("  %-16s %-9s fmt=%-4s hicamp=%7d conv=%7d ratio=%.2f"
              % (spec.name, spec.category, hicamp.fmt,
                 hicamp.dram_accesses, conv.dram_accesses,
                 hicamp.dram_accesses / conv.dram_accesses))

    # --- tree-recursive algebra with PLID shortcuts ----------------------
    from repro.apps.spmv.algebra import (
        _OpStats, parallel_spmv, qts_add, qts_scale, qts_transpose)

    print("\nTree-recursive algebra (PLID-comparison shortcuts):")
    stats = _OpStats()
    doubled = qts_add(machine, qt, qt, stats)
    print("  A + A: %d leaf adds, %d memo hits, %d zero shortcuts"
          % (stats.leaf_ops, stats.memo_hits, stats.zero_shortcuts))
    tripled = qts_add(machine, doubled, qt)
    scaled = qts_scale(machine, qt, 3.0)
    print("  (A+A)+A == 3*A by a single root compare:",
          tripled.equals(scaled))
    transposed = qts_transpose(machine, qt)
    print("  A^T == A for the symmetric FEM matrix (root compare):",
          transposed.equals(qt))

    # --- the paper's concurrent SpMV (section 5.2, last paragraph) ------
    y_parallel = parallel_spmv(machine, qt, x, n_workers=4)
    assert np.allclose(y_parallel, dense @ x)
    print("\n4-worker parallel SpMV over one snapshot, merged partitions: "
          "matches the serial result")


if __name__ == "__main__":
    main()
