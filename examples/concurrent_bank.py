#!/usr/bin/env python
"""The paper's bank example (section 2.2): a long-running, read-only
audit runs over a consistent snapshot of all accounts while customer
transactions keep committing — no locks, no copies, no stalls — plus
merge-update counters absorbing contended increments (section 3.4).

Run:  python examples/concurrent_bank.py
"""

from repro import Machine
from repro.concurrency import Scheduler
from repro.structures import HCounterArray

N_ACCOUNTS = 200
INITIAL_BALANCE = 1000


def main() -> None:
    machine = Machine()
    accounts = machine.create_segment([INITIAL_BALANCE] * N_ACCOUNTS)
    audited = []

    def auditor():
        # one snapshot = the consistent read of every account "at a given
        # point in time", while transfers keep committing underneath
        snap = machine.snapshot(accounts)
        total = 0
        for i in range(N_ACCOUNTS):
            total += snap.read(i)
            if i % 20 == 0:
                yield  # the audit is long-running; transfers interleave
        snap.release()
        audited.append(total)

    def teller(seed):
        import random
        rng = random.Random(seed)
        for _ in range(50):
            src, dst = rng.randrange(N_ACCOUNTS), rng.randrange(N_ACCOUNTS)
            amount = rng.randint(1, 50)

            def transfer(it, src=src, dst=dst, amount=amount):
                it.put(it.get(src) - amount, offset=src)
                it.put(it.get(dst) + amount, offset=dst)

            machine.atomic_update(accounts, transfer, merge=True)
            yield

    sched = Scheduler(seed=11)
    sched.spawn("audit", auditor())
    for t in range(4):
        sched.spawn("teller-%d" % t, teller(t))
    sched.run()

    final = sum(machine.read_segment(accounts))
    print("audit total (snapshot):   %d" % audited[0])
    print("final total (after 200 transfers): %d" % final)
    assert audited[0] == N_ACCOUNTS * INITIAL_BALANCE, "audit saw a torn state!"
    assert final == N_ACCOUNTS * INITIAL_BALANCE, "money was created/destroyed!"
    print("snapshot isolation held; every transfer was atomic.")

    # --- contended counters merge instead of aborting -------------------
    hits = HCounterArray.create(machine, 4)
    sched2 = Scheduler(seed=5)

    def worker(wid):
        for _ in range(25):
            hits.add(wid % 4, 1)
            yield

    for w in range(8):
        sched2.spawn("w%d" % w, worker(w))
    sched2.run()
    print("\nmerge-update counters:", hits.snapshot_values(),
          "(8 workers x 25 increments, no lost updates)")
    assert sum(hits.snapshot_values()) == 200


if __name__ == "__main__":
    main()
