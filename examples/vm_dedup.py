#!/usr/bin/env python
"""VM hosting on HICAMP (section 5.3): line-granularity deduplication of
VM memory images vs ideal page sharing.

Run:  python examples/vm_dedup.py
"""

from repro.apps.vmhost import measure_images
from repro.workloads.vm_images import TILE_ROLES, _Pools, scale_vms, vmmark_tile


def main() -> None:
    print("Per-role scaling (Figure 9): compaction vs #VMs")
    for role in ("database", "web", "standby"):
        print("  %s:" % role)
        for n in (1, 4, 10):
            m = measure_images(role, scale_vms(role, n, seed=2))
            print("    %2d VMs: allocated %5d KB | page sharing %.2fx "
                  "| HICAMP 64B %.2fx"
                  % (n, m.allocated_bytes // 1024,
                     m.page_sharing_compaction, m.hicamp_compaction))

    print("\nWhole tiles (Figure 10): six mixed VMs per tile")
    pools = _Pools(2)
    images = []
    for t in range(4):
        images.extend(vmmark_tile(t, pools, seed=2))
        m = measure_images("tiles", list(images))
        print("  %d tile(s), %2d VMs: page sharing %.2fx | HICAMP %.2fx"
              % (t + 1, len(images), m.page_sharing_compaction,
                 m.hicamp_compaction))

    print("\nWhy HICAMP beats page sharing: a guest page with a few dirty"
          "\n64-byte lines defeats page-level sharing entirely, but HICAMP"
          "\nstill shares every untouched line of it.")


if __name__ == "__main__":
    main()
